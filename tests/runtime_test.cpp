#include <gtest/gtest.h>

#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "kernels/getrf.hpp"
#include "matgen/generators.hpp"
#include "runtime/device_model.hpp"
#include "runtime/sim.hpp"
#include "runtime/threaded.hpp"
#include "symbolic/fill.hpp"

namespace pangulu::runtime {
namespace {

struct Prepared {
  block::BlockMatrix bm;
  std::vector<block::Task> tasks;
  block::Mapping mapping;
};

Prepared prepare(const Csc& a, index_t block_size, rank_t ranks) {
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(a, &sym).check();
  Prepared p;
  p.bm = block::BlockMatrix::from_filled(sym.filled, block_size);
  p.tasks = block::enumerate_tasks(p.bm);
  p.mapping = block::cyclic_mapping(p.bm, block::ProcessGrid::make(ranks));
  return p;
}

/// Serial single-block reference factorisation of the same filled pattern.
Csc reference_factor(const Csc& a) {
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(a, &sym).check();
  Csc f = sym.filled;
  kernels::Workspace ws;
  kernels::getrf(kernels::GetrfVariant::kCV1, f, ws, nullptr).check();
  return f;
}

TEST(DeviceModel, CostOrderingMatchesDecisionTreeRegimes) {
  DeviceModel d = DeviceModel::a100_like();
  // Tiny kernels: CPU beats GPU (launch overhead dominates).
  EXPECT_LT(d.sparse_kernel_time(false, false, 1e3, 100, 32),
            d.sparse_kernel_time(true, false, 1e3, 100, 32));
  // Huge kernels: GPU wins on throughput.
  EXPECT_GT(d.sparse_kernel_time(false, false, 1e9, 1e6, 256),
            d.sparse_kernel_time(true, false, 1e9, 1e6, 256));
  // Very large work: dense-mapping GPU beats bin-search GPU.
  EXPECT_GT(d.sparse_kernel_time(true, false, 1e10, 3e7, 256),
            d.sparse_kernel_time(true, true, 1e10, 3e7, 256));
}

TEST(DeviceModel, Mi50SlowerThanA100) {
  DeviceModel a = DeviceModel::a100_like();
  DeviceModel m = DeviceModel::mi50_like();
  EXPECT_GT(m.sparse_kernel_time(true, true, 1e9, 1e6, 256),
            a.sparse_kernel_time(true, true, 1e9, 1e6, 256));
  EXPECT_GT(m.dense_update_time(1e9, 1e8), a.dense_update_time(1e9, 1e8));
}

TEST(DeviceModel, MessageTimeGrowsWithBytes) {
  DeviceModel d = DeviceModel::a100_like();
  EXPECT_LT(d.message_time(1024), d.message_time(1 << 24));
  EXPECT_GT(d.message_time(0), 0.0);  // latency floor
  EXPECT_GT(block_message_bytes(100, 32), 100 * sizeof(value_t));
}

class SimCorrectnessP
    : public ::testing::TestWithParam<std::tuple<rank_t, ScheduleMode>> {};

TEST_P(SimCorrectnessP, FactorsMatchSingleBlockReference) {
  auto [ranks, mode] = GetParam();
  Csc a = matgen::grid2d_laplacian(9, 9);
  Csc ref = reference_factor(a);

  Prepared p = prepare(a, 16, ranks);
  SimOptions opts;
  opts.n_ranks = ranks;
  opts.schedule = mode;
  SimResult res;
  ASSERT_TRUE(simulate_factorization(p.bm, p.tasks, p.mapping, opts, &res).is_ok());
  Csc assembled = p.bm.to_csc();
  EXPECT_TRUE(assembled.approx_equal(ref, 1e-9))
      << "distributed factors differ from the serial reference";
  EXPECT_GT(res.makespan, 0);
  EXPECT_GT(res.total_flops, 0);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndModes, SimCorrectnessP,
    ::testing::Combine(::testing::Values<rank_t>(1, 2, 4, 8),
                       ::testing::Values(ScheduleMode::kSyncFree,
                                         ScheduleMode::kLevelSet)));

TEST(Sim, PoliciesProduceSameNumbers) {
  Csc a = matgen::circuit(250, 2.0, 2.2, 5);
  Csc first;
  for (auto policy : {KernelPolicy::kFixedCpu, KernelPolicy::kFixedGpu,
                      KernelPolicy::kAdaptive}) {
    Prepared p = prepare(a, 32, 4);
    SimOptions opts;
    opts.n_ranks = 4;
    opts.policy = policy;
    SimResult res;
    ASSERT_TRUE(
        simulate_factorization(p.bm, p.tasks, p.mapping, opts, &res).is_ok());
    Csc f = p.bm.to_csc();
    if (first.n_rows() == 0)
      first = f;
    else
      EXPECT_TRUE(first.approx_equal(f, 1e-9));
  }
}

TEST(Sim, DeterministicAcrossRuns) {
  Csc a = matgen::grid2d_laplacian(10, 10);
  SimResult r1, r2;
  for (auto* res : {&r1, &r2}) {
    Prepared p = prepare(a, 16, 4);
    SimOptions opts;
    opts.n_ranks = 4;
    ASSERT_TRUE(
        simulate_factorization(p.bm, p.tasks, p.mapping, opts, res).is_ok());
  }
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.messages, r2.messages);
  EXPECT_EQ(r1.bytes, r2.bytes);
}

TEST(Sim, MoreRanksSpeedUpAComputeHeavyMatrix) {
  // Needs enough work per task that communication does not dominate at 8
  // ranks: a dense-band matrix gives compute-heavy blocks.
  Csc a = matgen::banded_random(900, 70, 0.5, 4, 5);
  double t1 = 0, t8 = 0;
  {
    Prepared p = prepare(a, 128, 1);
    SimOptions opts;
    opts.n_ranks = 1;
    opts.execute_numerics = false;  // timing-only run
    SimResult res;
    ASSERT_TRUE(
        simulate_factorization(p.bm, p.tasks, p.mapping, opts, &res).is_ok());
    t1 = res.makespan;
  }
  {
    Prepared p = prepare(a, 128, 8);
    SimOptions opts;
    opts.n_ranks = 8;
    opts.execute_numerics = false;
    SimResult res;
    ASSERT_TRUE(
        simulate_factorization(p.bm, p.tasks, p.mapping, opts, &res).is_ok());
    t8 = res.makespan;
  }
  EXPECT_LT(t8, t1) << "8 simulated ranks should beat 1";
}

TEST(Sim, SyncFreeBeatsLevelSetOnSyncTime) {
  Csc a = matgen::grid3d_laplacian(6, 6, 6);
  SimResult sync_free, level_set;
  {
    Prepared p = prepare(a, 24, 8);
    SimOptions opts;
    opts.n_ranks = 8;
    opts.execute_numerics = false;
    opts.schedule = ScheduleMode::kSyncFree;
    ASSERT_TRUE(simulate_factorization(p.bm, p.tasks, p.mapping, opts,
                                       &sync_free).is_ok());
  }
  {
    Prepared p = prepare(a, 24, 8);
    SimOptions opts;
    opts.n_ranks = 8;
    opts.execute_numerics = false;
    opts.schedule = ScheduleMode::kLevelSet;
    ASSERT_TRUE(simulate_factorization(p.bm, p.tasks, p.mapping, opts,
                                       &level_set).is_ok());
  }
  EXPECT_LT(sync_free.makespan, level_set.makespan);
}

TEST(Sim, KindBreakdownSumsToBusyTotals) {
  Csc a = matgen::circuit(200, 2.0, 2.2, 9);
  Prepared p = prepare(a, 32, 2);
  SimOptions opts;
  opts.n_ranks = 2;
  opts.execute_numerics = false;
  SimResult res;
  ASSERT_TRUE(
      simulate_factorization(p.bm, p.tasks, p.mapping, opts, &res).is_ok());
  using block::TaskKind;
  const double panel = res.kind_busy[static_cast<int>(TaskKind::kGetrf)] +
                       res.kind_busy[static_cast<int>(TaskKind::kGessm)] +
                       res.kind_busy[static_cast<int>(TaskKind::kTstrf)];
  EXPECT_NEAR(panel, res.panel_busy, 1e-12);
  EXPECT_NEAR(res.kind_busy[static_cast<int>(TaskKind::kSsssm)],
              res.schur_busy, 1e-12);
  std::int64_t total_tasks = 0;
  for (int k = 0; k < 4; ++k) total_tasks += res.kind_count[k];
  EXPECT_EQ(total_tasks, static_cast<std::int64_t>(p.tasks.size()));
  EXPECT_EQ(res.kind_count[static_cast<int>(TaskKind::kGetrf)],
            static_cast<std::int64_t>(p.bm.nb()));
}

TEST(Sim, RejectsBadRankCounts) {
  Csc a = matgen::grid2d_laplacian(4, 4);
  Prepared p = prepare(a, 8, 2);
  SimOptions opts;
  opts.n_ranks = 0;
  SimResult res;
  EXPECT_FALSE(
      simulate_factorization(p.bm, p.tasks, p.mapping, opts, &res).is_ok());
  opts.n_ranks = 3;  // mapping was built for 2
  EXPECT_FALSE(
      simulate_factorization(p.bm, p.tasks, p.mapping, opts, &res).is_ok());
}

class ThreadedP : public ::testing::TestWithParam<rank_t> {};

TEST_P(ThreadedP, ConcurrentRanksMatchReference) {
  Csc a = matgen::grid2d_laplacian(8, 8);
  Csc ref = reference_factor(a);
  Prepared p = prepare(a, 12, GetParam());
  ThreadedOptions opts;
  opts.n_ranks = GetParam();
  ASSERT_TRUE(threaded_factorize(p.bm, p.tasks, p.mapping, opts).is_ok());
  EXPECT_TRUE(p.bm.to_csc().approx_equal(ref, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ThreadedP,
                         ::testing::Values<rank_t>(1, 2, 4, 7));

TEST(Threaded, RepeatedRunsAreConsistent) {
  // Stress interleavings: several concurrent runs must agree bit-for-bit in
  // pattern and to rounding in values (updates into a block serialise
  // through its per-block busy flag; stealing may reorder commuting
  // updates, which only moves rounding).
  Csc a = matgen::circuit(150, 2.0, 2.2, 21);
  Csc first;
  for (int trial = 0; trial < 3; ++trial) {
    Prepared p = prepare(a, 24, 4);
    ThreadedOptions opts;
    opts.n_ranks = 4;
    ASSERT_TRUE(threaded_factorize(p.bm, p.tasks, p.mapping, opts).is_ok());
    Csc f = p.bm.to_csc();
    if (first.n_rows() == 0)
      first = f;
    else
      EXPECT_TRUE(first.approx_equal(f, 1e-9));
  }
}

TEST(Threaded, WorkStealingTogglesAndMatchesReference) {
  Csc a = matgen::grid2d_laplacian(8, 8);
  Csc ref = reference_factor(a);
  for (bool steal : {false, true}) {
    Prepared p = prepare(a, 12, 4);
    ThreadedOptions opts;
    opts.n_ranks = 4;
    opts.work_stealing = steal;
    std::uint64_t steals = 0;
    opts.steal_count = &steals;
    ASSERT_TRUE(threaded_factorize(p.bm, p.tasks, p.mapping, opts).is_ok());
    EXPECT_TRUE(p.bm.to_csc().approx_equal(ref, 1e-9)) << "stealing=" << steal;
    if (!steal) EXPECT_EQ(steals, 0u);
  }
}

}  // namespace
}  // namespace pangulu::runtime
