#include <gtest/gtest.h>

#include <cmath>

#include "matgen/generators.hpp"

namespace pangulu::matgen {
namespace {

bool diagonally_dominant(const Csc& a) {
  const index_t n = a.n_cols();
  std::vector<value_t> offdiag(static_cast<std::size_t>(n), 0.0);
  std::vector<value_t> diag(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
      index_t r = a.row_idx()[static_cast<std::size_t>(p)];
      value_t v = a.values()[static_cast<std::size_t>(p)];
      if (r == j)
        diag[static_cast<std::size_t>(r)] += std::abs(v);
      else
        offdiag[static_cast<std::size_t>(r)] += std::abs(v);
    }
  }
  for (index_t i = 0; i < n; ++i) {
    if (diag[static_cast<std::size_t>(i)] <= offdiag[static_cast<std::size_t>(i)])
      return false;
  }
  return true;
}

TEST(Generators, Grid2dShape) {
  Csc m = grid2d_laplacian(5, 7);
  EXPECT_EQ(m.n_rows(), 35);
  EXPECT_TRUE(m.validate().is_ok());
  // Interior node has 5 stencil entries.
  EXPECT_EQ(m.col_nnz(5 * 3 + 2), 5);
  EXPECT_TRUE(diagonally_dominant(m));
}

TEST(Generators, Grid3dShape) {
  Csc m = grid3d_laplacian(4, 4, 4);
  EXPECT_EQ(m.n_rows(), 64);
  EXPECT_TRUE(m.validate().is_ok());
  EXPECT_TRUE(diagonally_dominant(m));
}

TEST(Generators, Fem3dHasDenseNodeBlocks) {
  Csc m = fem3d(3, 3, 3, 3, 42);
  EXPECT_EQ(m.n_rows(), 81);
  EXPECT_TRUE(m.validate().is_ok());
  // The 3x3 diagonal node coupling is fully dense.
  for (int di = 0; di < 3; ++di)
    for (int dj = 0; dj < 3; ++dj) EXPECT_NE(m.at(di, dj), 0.0);
  EXPECT_TRUE(diagonally_dominant(m));
}

TEST(Generators, CircuitIsUnsymmetricAndDominant) {
  Csc m = circuit(400, 3.0, 2.1, 680);
  EXPECT_TRUE(m.validate().is_ok());
  EXPECT_TRUE(diagonally_dominant(m));
  // Pattern asymmetry: at least one one-sided entry.
  bool asym = false;
  for (index_t j = 0; j < m.n_cols() && !asym; ++j) {
    for (nnz_t p = m.col_begin(j); p < m.col_end(j); ++p) {
      index_t r = m.row_idx()[static_cast<std::size_t>(p)];
      if (r != j && m.find(j, r) < 0) {
        asym = true;
        break;
      }
    }
  }
  EXPECT_TRUE(asym);
}

TEST(Generators, CircuitHasHeavyTailDegrees) {
  Csc m = circuit(2000, 3.0, 2.1, 680);
  index_t max_col = 0;
  double total = 0;
  for (index_t j = 0; j < m.n_cols(); ++j) {
    max_col = std::max(max_col, m.col_nnz(j));
    total += m.col_nnz(j);
  }
  const double avg = total / m.n_cols();
  EXPECT_GT(max_col, 8 * avg) << "power-law hubs expected";
}

TEST(Generators, Determinism) {
  Csc a = circuit(300, 2.0, 2.2, 99);
  Csc b = circuit(300, 2.0, 2.2, 99);
  EXPECT_TRUE(a.approx_equal(b, 0.0));
  Csc c = circuit(300, 2.0, 2.2, 100);
  EXPECT_FALSE(a.approx_equal(c, 0.0));
}

TEST(Generators, KktIsSymmetricPatternSaddlePoint) {
  Csc m = kkt(4, 4, 4, 1);
  EXPECT_EQ(m.n_rows(), 64 + 16);
  EXPECT_TRUE(m.validate().is_ok());
}

TEST(Generators, BandedRandomIsDense) {
  Csc m = banded_random(300, 40, 0.5, 5, 3);
  EXPECT_GT(m.density(), 0.05);
  EXPECT_TRUE(diagonally_dominant(m));
}

TEST(Generators, CageStyleUnsymmetric) {
  Csc m = cage_style(500, 4, 12);
  EXPECT_TRUE(m.validate().is_ok());
  EXPECT_TRUE(diagonally_dominant(m));
}

TEST(Generators, TriangularFactories) {
  Csc l = random_unit_lower(30, 0.3, 1);
  EXPECT_TRUE(l.is_lower_triangular());
  for (index_t j = 0; j < 30; ++j) EXPECT_DOUBLE_EQ(l.at(j, j), 1.0);
  Csc u = random_upper(30, 0.3, 2);
  EXPECT_TRUE(u.is_upper_triangular());
  for (index_t j = 0; j < 30; ++j) EXPECT_NE(u.at(j, j), 0.0);
}

TEST(PaperMatrices, AllSixteenGenerateAtTestScale) {
  auto names = paper_matrix_names();
  ASSERT_EQ(names.size(), 16u);
  for (const auto& name : names) {
    SCOPED_TRACE(name);
    Csc m = paper_matrix(name, 0.2);
    EXPECT_TRUE(m.validate().is_ok());
    EXPECT_GT(m.n_rows(), 0);
    EXPECT_EQ(m.n_rows(), m.n_cols());
    auto info = paper_matrix_info(name);
    EXPECT_EQ(info.name, name);
    EXPECT_FALSE(info.domain.empty());
  }
}

TEST(PaperMatrices, ScaleGrowsSize) {
  Csc small = paper_matrix("ecology1", 0.2);
  Csc large = paper_matrix("ecology1", 0.5);
  EXPECT_LT(small.n_rows(), large.n_rows());
}

TEST(PaperMatrices, UnknownNameThrows) {
  EXPECT_THROW(paper_matrix("not_a_matrix"), std::logic_error);
  EXPECT_THROW(paper_matrix_info("nope"), std::logic_error);
}

}  // namespace
}  // namespace pangulu::matgen
