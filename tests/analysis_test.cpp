#include <gtest/gtest.h>

#include "matgen/generators.hpp"
#include "sparse/analysis.hpp"

namespace pangulu {
namespace {

TEST(Analysis, SymmetricMatrixScoresOne) {
  Csc a = matgen::grid2d_laplacian(10, 10);
  MatrixProfile p = analyze(a);
  EXPECT_EQ(p.n_rows, 100);
  EXPECT_DOUBLE_EQ(p.pattern_symmetry, 1.0);
  EXPECT_DOUBLE_EQ(p.value_symmetry, 1.0);
  EXPECT_TRUE(p.diagonally_dominant);
  EXPECT_EQ(p.diagonal_nnz, 100);
  EXPECT_EQ(p.bandwidth, 10);  // 5-point stencil on a width-10 grid
}

TEST(Analysis, UnsymmetricMatrixScoresBelowOne) {
  Csc a = matgen::circuit(300, 2.5, 2.1, 7);
  MatrixProfile p = analyze(a);
  EXPECT_LT(p.pattern_symmetry, 1.0);
  EXPECT_GT(p.pattern_symmetry, 0.0);
  EXPECT_LE(p.value_symmetry, p.pattern_symmetry);
  EXPECT_GT(p.column_imbalance, 2.0) << "hubs expected";
}

TEST(Analysis, HandBuiltMatrixExactNumbers) {
  Coo coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(1, 1, 2.0);
  coo.add(2, 2, 2.0);
  coo.add(1, 0, -1.0);
  coo.add(0, 1, -1.0);  // mirrored pair with equal values
  coo.add(2, 0, 0.5);   // one-sided
  MatrixProfile p = analyze(Csc::from_coo(coo));
  EXPECT_EQ(p.nnz, 6);
  EXPECT_EQ(p.diagonal_nnz, 3);
  EXPECT_EQ(p.bandwidth, 2);
  EXPECT_NEAR(p.pattern_symmetry, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(p.value_symmetry, 2.0 / 3.0, 1e-12);
  EXPECT_TRUE(p.diagonally_dominant);
  EXPECT_EQ(p.max_column_nnz, 3);
}

TEST(Analysis, NotDominantWhenOffdiagWins) {
  Coo coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.add(1, 0, 5.0);
  MatrixProfile p = analyze(Csc::from_coo(coo));
  EXPECT_FALSE(p.diagonally_dominant);
}

TEST(Analysis, ReportMentionsKeyNumbers) {
  Csc a = matgen::grid2d_laplacian(4, 4);
  std::string s = to_string(analyze(a));
  EXPECT_NE(s.find("16 x 16"), std::string::npos);
  EXPECT_NE(s.find("diagonally dominant"), std::string::npos);
}

TEST(Analysis, RectangularMatrixSkipsSquareOnlyMetrics) {
  Csc a = matgen::random_rect(5, 8, 0.4, 3);
  MatrixProfile p = analyze(a);
  EXPECT_EQ(p.n_rows, 5);
  EXPECT_EQ(p.n_cols, 8);
  EXPECT_FALSE(p.diagonally_dominant);
}

}  // namespace
}  // namespace pangulu
