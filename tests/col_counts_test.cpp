#include <gtest/gtest.h>

#include "matgen/generators.hpp"
#include "symbolic/col_counts.hpp"
#include "symbolic/fill.hpp"

namespace pangulu::symbolic {
namespace {

/// Ground truth: count lower-column nonzeros from the full fill pattern.
std::vector<nnz_t> counts_from_fill(const Csc& a) {
  SymbolicResult sym;
  symbolic_symmetric(a, &sym).check();
  std::vector<nnz_t> counts(static_cast<std::size_t>(a.n_cols()), 0);
  for (index_t j = 0; j < a.n_cols(); ++j) {
    for (nnz_t p = sym.filled.col_begin(j); p < sym.filled.col_end(j); ++p) {
      if (sym.filled.row_idx()[static_cast<std::size_t>(p)] >= j)
        counts[static_cast<std::size_t>(j)]++;
    }
  }
  return counts;
}

class ColCountsP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColCountsP, MatchesFullSymbolicOnRandomMatrices) {
  Csc a = matgen::random_sparse(60, 3, GetParam());
  EXPECT_EQ(factor_column_counts(a), counts_from_fill(a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColCountsP,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(ColCounts, MatchesOnStructuredMatrices) {
  for (const char* name : {"ecology1", "ASIC_680k", "nlpkkt80", "cage12"}) {
    SCOPED_TRACE(name);
    Csc a = matgen::paper_matrix(name, 0.2);
    EXPECT_EQ(factor_column_counts(a), counts_from_fill(a));
  }
}

TEST(ColCounts, TridiagonalIsTwoPerColumn) {
  const index_t n = 10;
  Coo coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 2.0);
    if (i + 1 < n) {
      coo.add(i + 1, i, -1.0);
      coo.add(i, i + 1, -1.0);
    }
  }
  auto counts = factor_column_counts(Csc::from_coo(coo));
  for (index_t j = 0; j + 1 < n; ++j)
    EXPECT_EQ(counts[static_cast<std::size_t>(j)], 2);
  EXPECT_EQ(counts[static_cast<std::size_t>(n - 1)], 1);
}

TEST(ColCounts, EstimateFillMatchesSymbolicNnz) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    Csc a = matgen::random_sparse(80, 4, seed);
    SymbolicResult sym;
    symbolic_symmetric(a, &sym).check();
    EXPECT_EQ(estimate_fill(a), sym.nnz_lu) << "seed " << seed;
  }
}

TEST(ColCounts, DenseMatrixCountsAreTriangular) {
  const index_t n = 7;
  Csc a = matgen::random_sparse(n, n, 1, false);
  SymbolicResult sym;
  symbolic_symmetric(a, &sym).check();
  if (sym.filled.nnz() != static_cast<nnz_t>(n) * n) GTEST_SKIP();
  auto counts = factor_column_counts(a);
  for (index_t j = 0; j < n; ++j)
    EXPECT_EQ(counts[static_cast<std::size_t>(j)], n - j);
}

}  // namespace
}  // namespace pangulu::symbolic
