#include <gtest/gtest.h>

#include <cmath>

#include "matgen/generators.hpp"
#include "solver/solver.hpp"
#include "sparse/dense.hpp"
#include "sparse/ops.hpp"

namespace pangulu::solver {
namespace {

/// Dense LU determinant with partial pivoting — the reference for the
/// log-determinant API on small matrices.
void dense_determinant(const Csc& a, value_t* log_abs, int* sign) {
  Dense d = Dense::from_csc(a);
  const index_t n = d.n_rows();
  *log_abs = 0;
  *sign = 1;
  for (index_t k = 0; k < n; ++k) {
    index_t piv = k;
    for (index_t i = k + 1; i < n; ++i)
      if (std::abs(d(i, k)) > std::abs(d(piv, k))) piv = i;
    if (piv != k) {
      *sign = -*sign;
      for (index_t j = 0; j < n; ++j) std::swap(d(k, j), d(piv, j));
    }
    const value_t pkk = d(k, k);
    PANGULU_CHECK(pkk != 0, "singular test matrix");
    *log_abs += std::log(std::abs(pkk));
    if (pkk < 0) *sign = -*sign;
    for (index_t i = k + 1; i < n; ++i) {
      const value_t l = d(i, k) / pkk;
      if (l == value_t(0)) continue;
      for (index_t j = k + 1; j < n; ++j) d(i, j) -= l * d(k, j);
    }
  }
}

TEST(SolveStats, ReportsResidualAndIterations) {
  Csc a = matgen::grid2d_laplacian(12, 12);
  Solver s;
  ASSERT_TRUE(s.factorize(a, {}).is_ok());
  std::vector<value_t> ones(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  a.spmv(ones, b);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
  SolveStats st;
  ASSERT_TRUE(s.solve(b, x, &st).is_ok());
  EXPECT_LT(st.final_residual, 1e-12);
  EXPECT_GE(st.refine_iterations, 0);
  EXPECT_LE(st.refine_iterations, 3);
}

TEST(SolveMulti, MatchesColumnwiseSolves) {
  Csc a = matgen::circuit(150, 2.0, 2.2, 12);
  Solver s;
  ASSERT_TRUE(s.factorize(a, {}).is_ok());
  const index_t k = 5;
  Dense b(a.n_rows(), k);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < a.n_rows(); ++i)
      b(i, j) = std::sin(0.1 * i + j);
  Dense x;
  SolveStats worst;
  ASSERT_TRUE(s.solve_multi(b, &x, &worst).is_ok());
  EXPECT_LT(worst.final_residual, 1e-10);
  // Each column solves its own system.
  for (index_t j = 0; j < k; ++j) {
    std::vector<value_t> xj(static_cast<std::size_t>(a.n_cols()));
    std::vector<value_t> bj(static_cast<std::size_t>(a.n_rows()));
    for (index_t i = 0; i < a.n_rows(); ++i) {
      xj[static_cast<std::size_t>(i)] = x(i, j);
      bj[static_cast<std::size_t>(i)] = b(i, j);
    }
    EXPECT_LT(relative_residual(a, xj, bj), 1e-10) << "column " << j;
  }
}

TEST(SolveMulti, RejectsWrongRows) {
  Csc a = matgen::grid2d_laplacian(6, 6);
  Solver s;
  ASSERT_TRUE(s.factorize(a, {}).is_ok());
  Dense b(35, 2);
  Dense x;
  EXPECT_FALSE(s.solve_multi(b, &x).is_ok());
}

class DeterminantP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminantP, MatchesDenseReference) {
  Csc a = matgen::random_sparse(25, 3, GetParam());
  Solver s;
  ASSERT_TRUE(s.factorize(a, {}).is_ok());
  if (s.stats().sim.perturbed_pivots > 0) GTEST_SKIP() << "perturbed pivots";
  value_t got_log = 0, want_log = 0;
  int got_sign = 0, want_sign = 0;
  ASSERT_TRUE(s.log_abs_determinant(&got_log, &got_sign).is_ok());
  dense_determinant(a, &want_log, &want_sign);
  EXPECT_NEAR(got_log, want_log, 1e-6 * (1 + std::abs(want_log)));
  EXPECT_EQ(got_sign, want_sign);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminantP,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Determinant, IdentityIsZeroLogPositive) {
  Coo coo(6, 6);
  for (index_t i = 0; i < 6; ++i) coo.add(i, i, 1.0);
  Solver s;
  ASSERT_TRUE(s.factorize(Csc::from_coo(coo), {}).is_ok());
  value_t log_abs = 99;
  int sign = 0;
  ASSERT_TRUE(s.log_abs_determinant(&log_abs, &sign).is_ok());
  EXPECT_NEAR(log_abs, 0.0, 1e-10);
  EXPECT_EQ(sign, 1);
}

TEST(Determinant, BeforeFactorizeFails) {
  Solver s;
  value_t l;
  int sg;
  EXPECT_FALSE(s.log_abs_determinant(&l, &sg).is_ok());
}

TEST(Solver, StructurallySingularMatrixIsRejected) {
  // Column 3 is entirely empty: MC64 must report structural singularity.
  Coo coo(4, 4);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.add(2, 2, 1.0);
  coo.add(0, 1, 0.5);
  Csc a = Csc::from_coo(coo);
  Solver s;
  Status st = s.factorize(a, {});
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kNumericalError);
}

TEST(Solver, NumericallySingularMatrixSolvableViaPerturbation) {
  // Rank-deficient 2x2 block embedded in an identity: static pivoting
  // perturbs the zero pivot and refinement reports a poor residual rather
  // than crashing.
  Coo coo(4, 4);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(1, 1, 1.0);  // rows 0,1 identical -> singular
  coo.add(2, 2, 1.0);
  coo.add(3, 3, 1.0);
  Solver s;
  Options opts;
  opts.reorder.use_mc64 = false;
  opts.reorder.fill_reducing = ordering::FillReducing::kNatural;
  ASSERT_TRUE(s.factorize(Csc::from_coo(coo), opts).is_ok());
  EXPECT_GT(s.stats().sim.perturbed_pivots, 0);
}

TEST(Solver, ModelTriangularSolveReportsBothSweeps) {
  // A compute-heavy matrix: on tiny problems message latency can make the
  // solve model exceed the factorisation, which is not the property under
  // test.
  Csc a = matgen::banded_random(400, 50, 0.5, 4, 2);
  Options opts;
  opts.n_ranks = 4;
  Solver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  runtime::SimResult fwd, bwd;
  ASSERT_TRUE(s.model_triangular_solve(&fwd, &bwd).is_ok());
  EXPECT_GT(fwd.makespan, 0);
  EXPECT_GT(bwd.makespan, 0);
  // The solve phase is far cheaper than factorisation (O(nnz) vs O(flops)).
  EXPECT_LT(fwd.makespan + bwd.makespan, s.stats().sim.makespan);
  Solver unfactorized;
  EXPECT_FALSE(unfactorized.model_triangular_solve(&fwd, &bwd).is_ok());
}

TEST(Refactorize, NewValuesSamePatternSolveCorrectly) {
  Csc a = matgen::circuit(200, 2.0, 2.2, 55);
  Solver s;
  ASSERT_TRUE(s.factorize(a, {}).is_ok());

  // Newton-style update: same pattern, perturbed values (keep dominance).
  Csc a2 = a;
  for (auto& v : a2.values_mut()) v *= 1.5;
  ASSERT_TRUE(s.refactorize(a2).is_ok());

  std::vector<value_t> ones(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  a2.spmv(ones, b);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
  ASSERT_TRUE(s.solve(b, x).is_ok());
  EXPECT_LT(relative_residual(a2, x, b), 1e-9);
  for (value_t xi : x) EXPECT_NEAR(xi, 1.0, 1e-6);
}

TEST(Refactorize, MatchesFreshFactorizeSolution) {
  Csc a = matgen::grid2d_laplacian(14, 14);
  Csc a2 = a;
  for (auto& v : a2.values_mut()) v *= 0.7;

  Solver via_refactor;
  ASSERT_TRUE(via_refactor.factorize(a, {}).is_ok());
  ASSERT_TRUE(via_refactor.refactorize(a2).is_ok());

  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  for (index_t i = 0; i < a.n_rows(); ++i)
    b[static_cast<std::size_t>(i)] = 0.1 * i;
  std::vector<value_t> x1(static_cast<std::size_t>(a.n_cols()));
  ASSERT_TRUE(via_refactor.solve(b, x1).is_ok());

  Solver fresh;
  ASSERT_TRUE(fresh.factorize(a2, {}).is_ok());
  std::vector<value_t> x2(static_cast<std::size_t>(a.n_cols()));
  ASSERT_TRUE(fresh.solve(b, x2).is_ok());
  // Both are accurate solves of the same system (orderings may differ since
  // the fresh factorise reorders a2's values, so compare via residuals).
  EXPECT_LT(relative_residual(a2, x1, b), 1e-10);
  EXPECT_LT(relative_residual(a2, x2, b), 1e-10);
}

TEST(Refactorize, RejectsDifferentPattern) {
  Csc a = matgen::grid2d_laplacian(8, 8);
  Solver s;
  ASSERT_TRUE(s.factorize(a, {}).is_ok());
  Csc other = matgen::random_sparse(64, 3, 1);
  EXPECT_EQ(s.refactorize(other).code(), StatusCode::kFailedPrecondition);
  Csc wrong_size = matgen::grid2d_laplacian(7, 7);
  EXPECT_FALSE(s.refactorize(wrong_size).is_ok());
}

TEST(Refactorize, BeforeFactorizeFails) {
  Solver s;
  EXPECT_FALSE(s.refactorize(matgen::grid2d_laplacian(4, 4)).is_ok());
}

TEST(Refactorize, RepeatedRefactorizeStaysStable) {
  Csc a = matgen::banded_random(200, 25, 0.4, 3, 9);
  Solver s;
  ASSERT_TRUE(s.factorize(a, {}).is_ok());
  Csc cur = a;
  for (int step = 1; step <= 4; ++step) {
    for (auto& v : cur.values_mut()) v *= 1.05;
    ASSERT_TRUE(s.refactorize(cur).is_ok()) << "step " << step;
    std::vector<value_t> ones(static_cast<std::size_t>(a.n_cols()), 1.0);
    std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
    cur.spmv(ones, b);
    std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
    ASSERT_TRUE(s.solve(b, x).is_ok());
    EXPECT_LT(relative_residual(cur, x, b), 1e-9) << "step " << step;
  }
}

TEST(Solver, OneByOneMatrix) {
  Coo coo(1, 1);
  coo.add(0, 0, 4.0);
  Solver s;
  ASSERT_TRUE(s.factorize(Csc::from_coo(coo), {}).is_ok());
  std::vector<value_t> b = {8.0}, x = {0.0};
  ASSERT_TRUE(s.solve(b, x).is_ok());
  EXPECT_NEAR(x[0], 2.0, 1e-14);
}

}  // namespace
}  // namespace pangulu::solver
