// Mixed-precision property tests (DESIGN.md §14): FP32 factorisation is
// bitwise identical across every scheduler and executor (the determinism
// contract holds at both precisions); kMixedIR solves recover FP64 accuracy
// through iterative refinement on the cached FP32 solve plans; refinement
// failure modes are typed (kNumericBreakdown) instead of silently wrong;
// refactorisation and checkpoint/resume preserve FP32 factors bit for bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "kernels/precision.hpp"
#include "matgen/generators.hpp"
#include "runtime/sim.hpp"
#include "runtime/threaded.hpp"
#include "solver/session.hpp"
#include "solver/solver.hpp"
#include "symbolic/fill.hpp"

namespace pangulu {
namespace {

using kernels::Precision;
using runtime::ScheduleMode;
using runtime::SimOptions;
using runtime::SimResult;

struct Prepared {
  block::BlockMatrix bm;
  std::vector<block::Task> tasks;
  block::Mapping mapping;
};

Prepared prepare(const Csc& a, index_t block_size, rank_t ranks) {
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(a, &sym).check();
  Prepared p;
  p.bm = block::BlockMatrix::from_filled(sym.filled, block_size);
  p.tasks = block::enumerate_tasks(p.bm);
  p.mapping = block::cyclic_mapping(p.bm, block::ProcessGrid::make(ranks));
  return p;
}

/// Flat FP32 factor values, for bitwise comparisons across runs.
std::vector<float> fp32_values(const block::BlockMatrixT<float>& bm) {
  const auto f = bm.to_csc();
  return std::vector<float>(f.values().begin(), f.values().end());
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

/// b = A * ones, so the exact solution is the all-ones vector.
std::vector<value_t> ones_rhs(const Csc& a) {
  std::vector<value_t> ones(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  a.spmv(ones, b);
  return b;
}

// ---------------------------------------------------------------------------
// Determinism contract at FP32.
// ---------------------------------------------------------------------------

TEST(MixedPrecision, Fp32FactorsBitwiseIdenticalAcrossSchedulersAndExecutors) {
  Csc a = matgen::grid2d_laplacian(12, 12);

  std::vector<float> reference;
  auto check = [&](std::vector<float> got, const char* what) {
    if (reference.empty()) {
      reference = std::move(got);
      return;
    }
    EXPECT_TRUE(bitwise_equal(reference, got)) << what;
  };

  // DES, both scheduling modes, several rank counts.
  for (rank_t ranks : {1, 2, 4}) {
    Prepared p = prepare(a, 16, ranks);
    for (ScheduleMode mode : {ScheduleMode::kSyncFree, ScheduleMode::kLevelSet}) {
      auto bm = block::BlockMatrixT<float>::converted_from(p.bm);
      SimOptions opts;
      opts.n_ranks = ranks;
      opts.schedule = mode;
      SimResult res;
      Status s =
          runtime::simulate_factorization(bm, p.tasks, p.mapping, opts, &res);
      ASSERT_TRUE(s.is_ok()) << s.message();
      check(fp32_values(bm), mode == ScheduleMode::kSyncFree ? "DES sync-free"
                                                             : "DES level-set");
    }
  }

  // True-concurrency threaded executor.
  for (rank_t threads : {2, 4}) {
    Prepared p = prepare(a, 16, threads);
    auto bm = block::BlockMatrixT<float>::converted_from(p.bm);
    runtime::ThreadedOptions topts;
    topts.n_ranks = threads;
    Status s = runtime::threaded_factorize(bm, p.tasks, p.mapping, topts);
    ASSERT_TRUE(s.is_ok()) << s.message();
    check(fp32_values(bm), "threaded executor");
  }
}

// ---------------------------------------------------------------------------
// Mixed-IR accuracy on the tier-1 matgen families.
// ---------------------------------------------------------------------------

TEST(MixedPrecision, MixedIrReachesFp64ToleranceOnTier1Families) {
  struct Family {
    const char* name;
    Csc a;
  };
  const Family families[] = {
      {"grid2d", matgen::grid2d_laplacian(14, 14)},
      {"grid3d", matgen::grid3d_laplacian(6, 6, 6)},
      {"circuit", matgen::circuit(300, 2.0, 2.2, 7)},
      {"cage", matgen::cage_style(200, 3, 5)},
  };
  for (const Family& f : families) {
    solver::Solver s;
    solver::Options opts;
    opts.n_ranks = 4;
    opts.precision = Precision::kMixedIR;
    ASSERT_TRUE(s.factorize(f.a, opts).is_ok()) << f.name;

    const std::vector<value_t> b = ones_rhs(f.a);
    std::vector<value_t> x(b.size());
    solver::SolveStats stats;
    Status st = s.solve(b, x, &stats);
    ASSERT_TRUE(st.is_ok()) << f.name << ": " << st.message();
    EXPECT_GE(stats.refine_iterations, 1) << f.name;
    EXPECT_LE(stats.final_residual, opts.ir_tolerance) << f.name;
    for (value_t v : x) ASSERT_NEAR(v, 1.0, 1e-6) << f.name;
  }
}

TEST(MixedPrecision, SinglePrecisionSolvesAtFp32Accuracy) {
  Csc a = matgen::grid2d_laplacian(10, 10);
  solver::Solver s;
  solver::Options opts;
  opts.n_ranks = 2;
  opts.precision = Precision::kSingle;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());

  const std::vector<value_t> b = ones_rhs(a);
  std::vector<value_t> x(b.size());
  solver::SolveStats stats;
  ASSERT_TRUE(s.solve(b, x, &stats).is_ok());
  // kSingle never fails on accuracy grounds; it just reports what it got.
  EXPECT_LE(stats.final_residual, 1e-4);
  for (value_t v : x) ASSERT_NEAR(v, 1.0, 1e-2);

  // Transpose solves run on the FP32 factors too.
  std::vector<value_t> bt(b.size());
  a.transpose().spmv(std::vector<value_t>(b.size(), 1.0), bt);
  std::vector<value_t> xt(b.size());
  ASSERT_TRUE(s.solve_transpose(bt, xt).is_ok());
  for (value_t v : xt) ASSERT_NEAR(v, 1.0, 1e-2);
}

// ---------------------------------------------------------------------------
// IR edge cases: multiple sweeps, typed stall failure.
// ---------------------------------------------------------------------------

TEST(MixedPrecision, IllConditionedMatrixNeedsMultipleSweeps) {
  // A spectrally ill-conditioned system (smallest eigenvalue pushed to
  // lambda_max / 1e6): the FP32 preconditioner's per-sweep contraction is
  // ~ kappa * eps32, so refinement still converges but needs several sweeps
  // to cross 1e-12. Equilibration off: MC64 scaling must not get a chance
  // to "repair" what is a spectral property anyway.
  Csc a = matgen::shifted_illcond(12, 12, 1e6);
  solver::Solver s;
  solver::Options opts;
  opts.n_ranks = 2;
  opts.precision = Precision::kMixedIR;
  opts.reorder.use_mc64 = false;
  opts.reorder.apply_scaling = false;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());

  const std::vector<value_t> b = ones_rhs(a);
  std::vector<value_t> x(b.size());
  solver::SolveStats stats;
  Status st = s.solve(b, x, &stats);
  ASSERT_TRUE(st.is_ok()) << st.message();
  EXPECT_GE(stats.refine_iterations, 2)
      << "an ill-conditioned system should not converge in one sweep";
  EXPECT_LE(stats.final_residual, opts.ir_tolerance);
}

TEST(MixedPrecision, RefinementStallFailsWithNumericBreakdown) {
  // kappa ~ 1e9 exceeds ~1/eps32: the FP32 factorisation cannot
  // precondition the system, so refinement stalls and the solve must fail
  // with the typed breakdown code instead of returning a wrong answer.
  Csc a = matgen::shifted_illcond(12, 12, 1e9);
  solver::Solver s;
  solver::Options opts;
  opts.n_ranks = 2;
  opts.precision = Precision::kMixedIR;
  opts.reorder.use_mc64 = false;
  opts.reorder.apply_scaling = false;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());

  const std::vector<value_t> b = ones_rhs(a);
  std::vector<value_t> x(b.size());
  solver::SolveStats stats;
  Status st = s.solve(b, x, &stats);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kNumericBreakdown) << st.message();
  EXPECT_NE(st.message().find("kDouble"), std::string::npos)
      << "the failure message should point at the FP64 retry";

  // The same matrix at kDouble solves fine — breakdown is a property of the
  // FP32 preconditioner, not of the system.
  solver::Solver d;
  solver::Options dopts = opts;
  dopts.precision = Precision::kDouble;
  ASSERT_TRUE(d.factorize(a, dopts).is_ok());
  std::vector<value_t> xd(b.size());
  ASSERT_TRUE(d.solve(b, xd).is_ok());
}

TEST(MixedPrecision, SingularAtFp32PivotDrivesTypedStall) {
  // The coupled block [[1, 1], [1, 1 + 1e-9]] is invertible in FP64 but
  // exactly singular once the values narrow to FP32 (1 + 1e-9 rounds to 1,
  // eps32 ~ 1.2e-7): eliminating column 0 leaves a zero pivot that GETRF
  // perturbs to the pivot threshold, and the factorisation "completes" with
  // garbage in that column. A single perturbed pivot is usually harmless —
  // the error it injects is confined and refinement absorbs it — but here
  // the perturbation stands in for a genuinely lost eigenvalue, so the IR
  // iteration matrix has spectral radius >> 1 and the solve must stall.
  const double delta = 1e-9;
  const index_t n = 16;
  std::vector<nnz_t> col_ptr(static_cast<std::size_t>(n) + 1);
  std::vector<index_t> row_idx;
  std::vector<value_t> values;
  // Columns 0 and 1 hold the coupled block; the rest is identity.
  for (index_t j = 0; j < n; ++j) {
    col_ptr[static_cast<std::size_t>(j)] = static_cast<nnz_t>(row_idx.size());
    if (j < 2) {
      row_idx.push_back(0);
      row_idx.push_back(1);
      values.push_back(1.0);
      values.push_back(j == 0 ? 1.0 : 1.0 + delta);
    } else {
      row_idx.push_back(j);
      values.push_back(1.0);
    }
  }
  col_ptr[static_cast<std::size_t>(n)] = static_cast<nnz_t>(row_idx.size());
  Csc a = Csc::from_parts(n, n, col_ptr, row_idx, values);

  solver::Options opts;
  opts.n_ranks = 1;
  opts.precision = Precision::kMixedIR;
  // Natural order, no MC64, no scaling: nothing may rescue the tiny pivot.
  opts.reorder.use_mc64 = false;
  opts.reorder.apply_scaling = false;
  opts.reorder.fill_reducing = ordering::FillReducing::kNatural;

  solver::Solver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  const std::vector<value_t> b = ones_rhs(a);
  std::vector<value_t> x(b.size());
  solver::SolveStats stats;
  Status st = s.solve(b, x, &stats);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kNumericBreakdown) << st.message();

  solver::Solver d;
  solver::Options dopts = opts;
  dopts.precision = Precision::kDouble;
  ASSERT_TRUE(d.factorize(a, dopts).is_ok());
  std::vector<value_t> xd(b.size());
  Status sd = d.solve(b, xd);
  ASSERT_TRUE(sd.is_ok()) << sd.message();
}

// ---------------------------------------------------------------------------
// Refactorisation and multi-RHS under mixed-IR.
// ---------------------------------------------------------------------------

TEST(MixedPrecision, RefactorizeKeepsFp32FactorsBitwiseStable) {
  Csc a = matgen::grid2d_laplacian(11, 11);
  solver::Solver s;
  solver::Options opts;
  opts.n_ranks = 2;
  opts.precision = Precision::kMixedIR;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  const std::vector<float> first = fp32_values(s.factors32());
  ASSERT_FALSE(first.empty());

  // Same values through the pattern-reuse path: identical FP32 factors.
  ASSERT_TRUE(
      s.refactorize_values(std::span<const value_t>(a.values())).is_ok());
  EXPECT_TRUE(bitwise_equal(first, fp32_values(s.factors32())));

  // Solves on the refactorised state still refine to tolerance.
  const std::vector<value_t> b = ones_rhs(a);
  std::vector<value_t> x(b.size());
  solver::SolveStats stats;
  ASSERT_TRUE(s.solve(b, x, &stats).is_ok());
  EXPECT_LE(stats.final_residual, opts.ir_tolerance);

  // Scaled values change the factors but stay refinable.
  std::vector<value_t> scaled(a.values().begin(), a.values().end());
  for (value_t& v : scaled) v *= 3.0;
  ASSERT_TRUE(s.refactorize_values(scaled).is_ok());
  EXPECT_FALSE(bitwise_equal(first, fp32_values(s.factors32())));
  Csc a3 = a;
  for (value_t& v : a3.values_mut()) v *= 3.0;
  const std::vector<value_t> b3 = ones_rhs(a3);
  std::vector<value_t> x3(b3.size());
  ASSERT_TRUE(s.solve(b3, x3, &stats).is_ok());
  for (value_t v : x3) ASSERT_NEAR(v, 1.0, 1e-6);
}

TEST(MixedPrecision, MultiRhsPanelsRefineEveryColumn) {
  Csc a = matgen::grid2d_laplacian(12, 12);
  const index_t n = a.n_cols();
  solver::Session session;
  solver::Options opts;
  opts.n_ranks = 4;
  opts.precision = Precision::kMixedIR;
  ASSERT_TRUE(session.setup(a, opts).is_ok());

  const index_t k = 3;
  Dense b(n, k);
  for (index_t j = 0; j < k; ++j) {
    // Column j is A * (j+1)*ones: distinct exact solutions per column.
    std::vector<value_t> xj(static_cast<std::size_t>(n),
                            static_cast<value_t>(j + 1));
    std::vector<value_t> bj(static_cast<std::size_t>(n));
    a.spmv(xj, bj);
    std::copy(bj.begin(), bj.end(), b.col(j));
  }
  Dense x;
  solver::SolveStats worst;
  Status st = session.solve_multi(b, &x, &worst);
  ASSERT_TRUE(st.is_ok()) << st.message();
  EXPECT_GE(worst.refine_iterations, 1);
  EXPECT_LE(worst.final_residual, opts.ir_tolerance);
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < n; ++i)
      ASSERT_NEAR(x.col(j)[i], static_cast<value_t>(j + 1), 1e-6)
          << "column " << j;
  }
}

// ---------------------------------------------------------------------------
// Checkpoint/resume carries the precision.
// ---------------------------------------------------------------------------

TEST(MixedPrecision, CheckpointResumeRestoresPrecisionAndFp32Factors) {
  Csc a = matgen::grid2d_laplacian(10, 10);
  const std::string path =
      ::testing::TempDir() + "/mixed_precision_checkpoint.bin";

  solver::Solver s;
  solver::Options opts;
  opts.n_ranks = 2;
  opts.precision = Precision::kMixedIR;
  opts.checkpoint_path = path;
  opts.checkpoint_interval_tasks = 5;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  const std::vector<float> reference = fp32_values(s.factors32());

  // Resume from the last mid-flight snapshot: the restored run must land on
  // the same FP32 bits and remember it is a mixed-IR solver.
  solver::Solver r;
  Status st = r.resume_from(path);
  ASSERT_TRUE(st.is_ok()) << st.message();
  EXPECT_EQ(r.options().precision, Precision::kMixedIR);
  EXPECT_TRUE(bitwise_equal(reference, fp32_values(r.factors32())));

  const std::vector<value_t> b = ones_rhs(a);
  std::vector<value_t> x(b.size());
  solver::SolveStats stats;
  ASSERT_TRUE(r.solve(b, x, &stats).is_ok());
  EXPECT_LE(stats.final_residual, opts.ir_tolerance);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pangulu
