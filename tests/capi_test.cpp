#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "capi/pangulu_c.h"
#include "io/matrix_market.hpp"
#include "matgen/generators.hpp"
#include "sparse/ops.hpp"

namespace {

using pangulu::Csc;
using pangulu::index_t;
using pangulu::value_t;

struct CscArrays {
  std::vector<int64_t> col_ptr;
  std::vector<int32_t> row_idx;
  std::vector<double> values;
};

CscArrays to_arrays(const Csc& m) {
  CscArrays a;
  a.col_ptr.assign(m.col_ptr().begin(), m.col_ptr().end());
  a.row_idx.assign(m.row_idx().begin(), m.row_idx().end());
  a.values.assign(m.values().begin(), m.values().end());
  return a;
}

TEST(CApi, CreateFactorizeSolveRoundTrip) {
  Csc m = pangulu::matgen::grid2d_laplacian(12, 12);
  CscArrays a = to_arrays(m);
  pangulu_handle* h = nullptr;
  ASSERT_EQ(pangulu_create(m.n_cols(), a.col_ptr.data(), a.row_idx.data(),
                           a.values.data(), &h),
            PANGULU_OK);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(pangulu_matrix_order(h), 144);
  EXPECT_EQ(pangulu_nnz_lu(h), -1) << "not factorised yet";

  ASSERT_EQ(pangulu_factorize(h, 4, 0), PANGULU_OK);
  EXPECT_GT(pangulu_nnz_lu(h), m.nnz());
  EXPECT_GT(pangulu_factor_flops(h), 0.0);
  EXPECT_GT(pangulu_modeled_numeric_seconds(h), 0.0);

  std::vector<value_t> ones(static_cast<std::size_t>(m.n_cols()), 1.0);
  std::vector<double> bx(static_cast<std::size_t>(m.n_rows()));
  m.spmv(ones, bx);
  ASSERT_EQ(pangulu_solve(h, bx.data()), PANGULU_OK);
  for (double v : bx) EXPECT_NEAR(v, 1.0, 1e-8);

  pangulu_destroy(h);
}

TEST(CApi, TransposeSolve) {
  Csc m = pangulu::matgen::cage_style(120, 3, 5);
  CscArrays a = to_arrays(m);
  pangulu_handle* h = nullptr;
  ASSERT_EQ(pangulu_create(m.n_cols(), a.col_ptr.data(), a.row_idx.data(),
                           a.values.data(), &h),
            PANGULU_OK);
  ASSERT_EQ(pangulu_factorize(h, 1, 0), PANGULU_OK);
  std::vector<value_t> ones(static_cast<std::size_t>(m.n_cols()), 1.0);
  std::vector<double> bx(static_cast<std::size_t>(m.n_rows()));
  m.transpose().spmv(ones, bx);
  ASSERT_EQ(pangulu_solve_transpose(h, bx.data()), PANGULU_OK);
  for (double v : bx) EXPECT_NEAR(v, 1.0, 1e-7);
  pangulu_destroy(h);
}

TEST(CApi, ErrorPathsReportCodesAndMessages) {
  pangulu_handle* h = nullptr;
  EXPECT_EQ(pangulu_create(3, nullptr, nullptr, nullptr, &h),
            PANGULU_INVALID_ARGUMENT);

  // Malformed CSC: unsorted rows.
  std::vector<int64_t> cp = {0, 2, 2, 2};
  std::vector<int32_t> ri = {2, 0};
  std::vector<double> v = {1.0, 2.0};
  EXPECT_NE(pangulu_create(3, cp.data(), ri.data(), v.data(), &h), PANGULU_OK);

  // Solve before factorise.
  Csc m = pangulu::matgen::grid2d_laplacian(4, 4);
  CscArrays a = to_arrays(m);
  ASSERT_EQ(pangulu_create(m.n_cols(), a.col_ptr.data(), a.row_idx.data(),
                           a.values.data(), &h),
            PANGULU_OK);
  std::vector<double> bx(16, 1.0);
  EXPECT_EQ(pangulu_solve(h, bx.data()), PANGULU_FAILED_PRECONDITION);
  EXPECT_NE(std::string(pangulu_last_error(h)), "");
  pangulu_destroy(h);

  // Structurally singular matrix fails factorisation with a numeric code.
  std::vector<int64_t> cp2 = {0, 1, 1};
  std::vector<int32_t> ri2 = {0};
  std::vector<double> v2 = {1.0};
  ASSERT_EQ(pangulu_create(2, cp2.data(), ri2.data(), v2.data(), &h),
            PANGULU_OK);
  EXPECT_EQ(pangulu_factorize(h, 1, 0), PANGULU_NUMERICAL_ERROR);
  pangulu_destroy(h);

  // Null handles are tolerated.
  EXPECT_EQ(pangulu_matrix_order(nullptr), -1);
  EXPECT_EQ(pangulu_nnz_lu(nullptr), -1);
  EXPECT_EQ(pangulu_solve(nullptr, bx.data()), PANGULU_INVALID_ARGUMENT);
  pangulu_destroy(nullptr);
}

TEST(CApi, CheckpointedFactorizeAndResumeRoundTrip) {
  Csc m = pangulu::matgen::grid2d_laplacian(10, 10);
  CscArrays a = to_arrays(m);
  const std::string path = ::testing::TempDir() + "/capi_checkpoint.bin";

  // Checkpointed factorise runs to completion and leaves a loadable snapshot.
  pangulu_handle* h = nullptr;
  ASSERT_EQ(pangulu_create(m.n_cols(), a.col_ptr.data(), a.row_idx.data(),
                           a.values.data(), &h),
            PANGULU_OK);
  ASSERT_EQ(pangulu_factorize_checkpointed(h, 2, 0, path.c_str(), 5),
            PANGULU_OK);
  const int64_t nnz_lu = pangulu_nnz_lu(h);
  EXPECT_GT(nnz_lu, 0);

  std::vector<value_t> ones(static_cast<std::size_t>(m.n_cols()), 1.0);
  std::vector<double> bx(static_cast<std::size_t>(m.n_rows()));
  m.spmv(ones, bx);
  ASSERT_EQ(pangulu_solve(h, bx.data()), PANGULU_OK);
  pangulu_destroy(h);

  // Resume from the mid-flight snapshot in a brand-new handle: the restored
  // solver solves to the exact same answer.
  pangulu_handle* r = nullptr;
  ASSERT_EQ(pangulu_resume_from_checkpoint(path.c_str(), &r), PANGULU_OK);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(pangulu_matrix_order(r), m.n_cols());
  EXPECT_EQ(pangulu_nnz_lu(r), nnz_lu);
  std::vector<double> bx2(static_cast<std::size_t>(m.n_rows()));
  m.spmv(ones, bx2);
  ASSERT_EQ(pangulu_solve(r, bx2.data()), PANGULU_OK);
  for (std::size_t i = 0; i < bx.size(); ++i) EXPECT_EQ(bx[i], bx2[i]);
  pangulu_destroy(r);

  // Corrupt the snapshot on disk: typed corruption code, no handle.
  {
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(64);
    const char x = 0x7f;
    f.write(&x, 1);
  }
  pangulu_handle* bad = nullptr;
  const int rc = pangulu_resume_from_checkpoint(path.c_str(), &bad);
  EXPECT_TRUE(rc == PANGULU_DATA_CORRUPTION || rc == PANGULU_IO_ERROR);
  EXPECT_EQ(bad, nullptr);
  std::remove(path.c_str());

  EXPECT_EQ(pangulu_resume_from_checkpoint(path.c_str(), &bad),
            PANGULU_IO_ERROR);
  EXPECT_EQ(pangulu_factorize_checkpointed(nullptr, 1, 0, path.c_str(), 0),
            PANGULU_INVALID_ARGUMENT);
  EXPECT_EQ(pangulu_resume_from_checkpoint(nullptr, &bad),
            PANGULU_INVALID_ARGUMENT);
}

TEST(CApi, SessionRefactorizeAndMultiRhsRoundTrip) {
  Csc m = pangulu::matgen::grid2d_laplacian(12, 12);
  const int32_t n = m.n_cols();
  CscArrays a = to_arrays(m);
  pangulu_session* s = nullptr;
  ASSERT_EQ(pangulu_session_create(n, a.col_ptr.data(), a.row_idx.data(),
                                   a.values.data(), 4, 0, &s),
            PANGULU_OK);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(pangulu_session_matrix_order(s), n);
  EXPECT_NE(pangulu_session_pattern_hash(s), 0u);

  std::vector<value_t> ones(static_cast<std::size_t>(n), 1.0);
  std::vector<double> bx(static_cast<std::size_t>(n));
  m.spmv(ones, bx);
  ASSERT_EQ(pangulu_session_solve(s, bx.data()), PANGULU_OK);
  for (double v : bx) EXPECT_NEAR(v, 1.0, 1e-8);

  // Numeric-only refactorisation with scaled values: solves track them.
  std::vector<double> v2(a.values);
  for (double& v : v2) v *= 2.0;
  ASSERT_EQ(pangulu_session_refactorize(s, v2.data(),
                                        static_cast<int64_t>(v2.size())),
            PANGULU_OK);
  Csc m2 = m;
  for (value_t& v : m2.values_mut()) v *= 2.0;
  m2.spmv(ones, bx);
  ASSERT_EQ(pangulu_session_solve(s, bx.data()), PANGULU_OK);
  for (double v : bx) EXPECT_NEAR(v, 1.0, 1e-8);

  // Multi-RHS: each column comes back bitwise equal to its single solve.
  const int32_t k = 3;
  std::vector<double> panel(static_cast<std::size_t>(n) * k);
  for (std::size_t i = 0; i < panel.size(); ++i)
    panel[i] = 0.25 + 0.5 * static_cast<double>(i % 7);
  std::vector<double> cols(panel);
  ASSERT_EQ(pangulu_session_solve_multi(s, panel.data(), k), PANGULU_OK);
  for (int32_t j = 0; j < k; ++j) {
    ASSERT_EQ(pangulu_session_solve(
                  s, cols.data() + static_cast<std::size_t>(j) * n),
              PANGULU_OK);
    for (int32_t i = 0; i < n; ++i)
      EXPECT_EQ(panel[static_cast<std::size_t>(j) * n + i],
                cols[static_cast<std::size_t>(j) * n + i]);
  }

  // Wrong value count: typed precondition failure with a message.
  EXPECT_EQ(pangulu_session_refactorize(s, v2.data(),
                                        static_cast<int64_t>(v2.size()) - 1),
            PANGULU_FAILED_PRECONDITION);
  EXPECT_NE(std::string(pangulu_session_last_error(s)), "");

  // Different pattern through the CSC path: fingerprint mismatch.
  Csc other = pangulu::matgen::grid2d_laplacian(16, 9);
  ASSERT_EQ(other.n_cols(), n);
  CscArrays oa = to_arrays(other);
  EXPECT_EQ(pangulu_session_refactorize_csc(s, oa.col_ptr.data(),
                                            oa.row_idx.data(),
                                            oa.values.data()),
            PANGULU_FAILED_PRECONDITION);

  // Null/invalid arguments are tolerated.
  EXPECT_EQ(pangulu_session_solve(nullptr, bx.data()),
            PANGULU_INVALID_ARGUMENT);
  EXPECT_EQ(pangulu_session_matrix_order(nullptr), -1);
  EXPECT_EQ(pangulu_session_pattern_hash(nullptr), 0u);
  pangulu_session_destroy(s);
  pangulu_session_destroy(nullptr);
}

TEST(CApi, MixedPrecisionSessionRoundTrip) {
  Csc m = pangulu::matgen::grid2d_laplacian(12, 12);
  const int32_t n = m.n_cols();
  CscArrays a = to_arrays(m);
  const double tol = 1e-12;

  pangulu_session* s = nullptr;
  ASSERT_EQ(pangulu_session_create_ex(n, a.col_ptr.data(), a.row_idx.data(),
                                      a.values.data(), 4, 0,
                                      PANGULU_PRECISION_MIXED_IR, tol, 0, &s),
            PANGULU_OK);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(pangulu_session_precision(s), PANGULU_PRECISION_MIXED_IR);
  EXPECT_EQ(pangulu_session_refine_iterations(s), -1) << "no solve yet";
  EXPECT_EQ(pangulu_session_final_residual(s), -1.0);

  std::vector<value_t> ones(static_cast<std::size_t>(n), 1.0);
  std::vector<double> bx(static_cast<std::size_t>(n));
  m.spmv(ones, bx);
  ASSERT_EQ(pangulu_session_solve(s, bx.data()), PANGULU_OK);
  for (double v : bx) EXPECT_NEAR(v, 1.0, 1e-9);

  // IR stats are retrievable and honour the requested tolerance.
  EXPECT_GE(pangulu_session_refine_iterations(s), 1);
  EXPECT_GE(pangulu_session_final_residual(s), 0.0);
  EXPECT_LE(pangulu_session_final_residual(s), tol);

  // Multi-RHS under mixed-IR reports the worst column's stats.
  const int32_t k = 2;
  std::vector<double> panel(static_cast<std::size_t>(n) * k, 1.0);
  ASSERT_EQ(pangulu_session_solve_multi(s, panel.data(), k), PANGULU_OK);
  EXPECT_LE(pangulu_session_final_residual(s), tol);

  pangulu_session_destroy(s);

  // The classic constructor stays FP64 and reports its precision as such.
  pangulu_session* d = nullptr;
  ASSERT_EQ(pangulu_session_create(n, a.col_ptr.data(), a.row_idx.data(),
                                   a.values.data(), 1, 0, &d),
            PANGULU_OK);
  EXPECT_EQ(pangulu_session_precision(d), PANGULU_PRECISION_DOUBLE);
  pangulu_session_destroy(d);

  // Out-of-range precision and negative IR knobs are rejected up front.
  EXPECT_EQ(pangulu_session_create_ex(n, a.col_ptr.data(), a.row_idx.data(),
                                      a.values.data(), 1, 0,
                                      static_cast<pangulu_precision>(7), 0, 0,
                                      &s),
            PANGULU_INVALID_ARGUMENT);
  EXPECT_EQ(pangulu_session_create_ex(n, a.col_ptr.data(), a.row_idx.data(),
                                      a.values.data(), 1, 0,
                                      PANGULU_PRECISION_MIXED_IR, -1.0, 0, &s),
            PANGULU_INVALID_ARGUMENT);
  EXPECT_EQ(pangulu_session_precision(nullptr), PANGULU_PRECISION_DOUBLE);
  EXPECT_EQ(pangulu_session_refine_iterations(nullptr), -1);
}

// Deadline round trip: a missed deadline sheds typed, leaves b_x bitwise
// untouched, and the session remains fully usable — the same solve then
// succeeds without a deadline and with a generous one.
TEST(CApiSession, SolveDeadlineRoundTrip) {
  Csc m = pangulu::matgen::grid2d_laplacian(12, 12);
  const int32_t n = m.n_cols();
  CscArrays a = to_arrays(m);
  pangulu_session* s = nullptr;
  ASSERT_EQ(pangulu_session_create(n, a.col_ptr.data(), a.row_idx.data(),
                                   a.values.data(), 4, 0, &s),
            PANGULU_OK);

  std::vector<value_t> ones(static_cast<std::size_t>(n), 1.0);
  std::vector<double> rhs(static_cast<std::size_t>(n));
  m.spmv(ones, rhs);

  // deadline <= 0 sheds immediately; 1 ns expires at the first sweep level.
  for (double dl : {0.0, 1e-9}) {
    std::vector<double> bx = rhs;
    EXPECT_EQ(pangulu_session_solve_deadline(s, bx.data(), dl),
              PANGULU_DEADLINE_EXCEEDED);
    EXPECT_EQ(bx, rhs) << "a shed solve must not touch b_x";
    EXPECT_NE(std::string(pangulu_session_last_error(s)), "");
  }

  std::vector<double> bx = rhs;
  ASSERT_EQ(pangulu_session_solve(s, bx.data()), PANGULU_OK);
  for (double v : bx) EXPECT_NEAR(v, 1.0, 1e-8);

  std::vector<double> bx2 = rhs;
  ASSERT_EQ(pangulu_session_solve_deadline(s, bx2.data(), 60.0), PANGULU_OK);
  EXPECT_EQ(bx2, bx) << "a roomy deadline behaves exactly like solve";

  EXPECT_EQ(pangulu_session_solve_deadline(nullptr, bx.data(), 1.0),
            PANGULU_INVALID_ARGUMENT);
  EXPECT_EQ(pangulu_session_solve_deadline(s, nullptr, 1.0),
            PANGULU_INVALID_ARGUMENT);
  // The two shed codes are distinct, stable enum members.
  EXPECT_NE(PANGULU_DEADLINE_EXCEEDED, PANGULU_CANCELLED);
  pangulu_session_destroy(s);
}

TEST(CApi, CreateFromFile) {
  Csc m = pangulu::matgen::grid2d_laplacian(6, 6);
  const std::string path = ::testing::TempDir() + "/capi_test.mtx";
  pangulu::io::write_matrix_market_file(path, m).check();
  pangulu_handle* h = nullptr;
  ASSERT_EQ(pangulu_create_from_file(path.c_str(), &h), PANGULU_OK);
  EXPECT_EQ(pangulu_matrix_order(h), 36);
  ASSERT_EQ(pangulu_factorize(h, 2, 0), PANGULU_OK);
  pangulu_destroy(h);
  EXPECT_EQ(pangulu_create_from_file("/no/such/file.mtx", &h),
            PANGULU_IO_ERROR);
}

}  // namespace
