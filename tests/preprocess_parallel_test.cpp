// Determinism properties of the parallel preprocessing front-end: every
// parallel phase (transpose, symmetrisation, adjacency graph, symbolic fill,
// 2D blocking, mapping) must be *bitwise identical* to its single-threaded
// reference at any thread count, and parallel runs must agree with each
// other. Approximate comparison would hide exactly the bugs these tests
// exist to catch, so values are compared by bit pattern (memcmp), not
// tolerance.
#include <gtest/gtest.h>

#include <cstring>

#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "matgen/generators.hpp"
#include "ordering/graph.hpp"
#include "parallel/thread_pool.hpp"
#include "sparse/ops.hpp"
#include "symbolic/fill.hpp"

namespace pangulu {
namespace {

std::vector<Csc> seeded_matrices() {
  std::vector<Csc> ms;
  ms.push_back(matgen::circuit(500, 2.5, 2.1, 7));
  ms.push_back(matgen::grid2d_laplacian(22, 22));
  ms.push_back(matgen::banded_random(300, 24, 0.4, 3, 11));
  ms.push_back(matgen::cage_style(350, 3, 5));
  return ms;
}

void expect_bitwise_equal(const Csc& got, const Csc& want) {
  ASSERT_EQ(got.n_rows(), want.n_rows());
  ASSERT_EQ(got.n_cols(), want.n_cols());
  ASSERT_TRUE(std::equal(got.col_ptr().begin(), got.col_ptr().end(),
                         want.col_ptr().begin(), want.col_ptr().end()));
  ASSERT_TRUE(std::equal(got.row_idx().begin(), got.row_idx().end(),
                         want.row_idx().begin(), want.row_idx().end()));
  ASSERT_EQ(got.values().size(), want.values().size());
  EXPECT_EQ(0, std::memcmp(got.values().data(), want.values().data(),
                           got.values().size() * sizeof(value_t)))
      << "value arrays differ bitwise";
}

void expect_same_layout(const block::BlockMatrix& got,
                        const block::BlockMatrix& want) {
  ASSERT_EQ(got.nb(), want.nb());
  ASSERT_EQ(got.n_blocks(), want.n_blocks());
  for (index_t bj = 0; bj < got.nb(); ++bj) {
    ASSERT_EQ(got.col_begin(bj), want.col_begin(bj));
    ASSERT_EQ(got.col_end(bj), want.col_end(bj));
  }
  for (nnz_t pos = 0; pos < got.n_blocks(); ++pos) {
    ASSERT_EQ(got.block_row_of(pos), want.block_row_of(pos));
    ASSERT_EQ(got.block_col_of(pos), want.block_col_of(pos));
    expect_bitwise_equal(got.block(pos), want.block(pos));
  }
  for (index_t bi = 0; bi < got.nb(); ++bi) {
    ASSERT_EQ(got.row_begin(bi), want.row_begin(bi));
    ASSERT_EQ(got.row_end(bi), want.row_end(bi));
    for (nnz_t rp = got.row_begin(bi); rp < got.row_end(bi); ++rp) {
      ASSERT_EQ(got.row_block_col(rp), want.row_block_col(rp));
      ASSERT_EQ(got.row_block_pos(rp), want.row_block_pos(rp));
    }
  }
}

class PreprocessParallelP : public ::testing::TestWithParam<int> {};

TEST_P(PreprocessParallelP, TransposedMatchesSerial) {
  ThreadPool pool(static_cast<std::size_t>(GetParam()));
  for (const Csc& a : seeded_matrices()) {
    expect_bitwise_equal(transposed(a, &pool), a.transpose());
  }
}

TEST_P(PreprocessParallelP, SymmetrizedWithDiagonalMatchesReference) {
  ThreadPool pool(static_cast<std::size_t>(GetParam()));
  for (const Csc& a : seeded_matrices()) {
    expect_bitwise_equal(symmetrized_with_diagonal(a, &pool),
                         a.symmetrized().with_full_diagonal());
  }
}

TEST_P(PreprocessParallelP, GraphFromMatrixMatchesSerial) {
  ThreadPool pool(static_cast<std::size_t>(GetParam()));
  ThreadPool serial(1);
  for (const Csc& a : seeded_matrices()) {
    const auto g = ordering::Graph::from_matrix(a, &pool);
    const auto ref = ordering::Graph::from_matrix(a, &serial);
    ASSERT_EQ(g.n, ref.n);
    EXPECT_EQ(g.ptr, ref.ptr);
    EXPECT_EQ(g.adj, ref.adj);
  }
}

TEST_P(PreprocessParallelP, SymbolicFillMatchesSerial) {
  ThreadPool pool(static_cast<std::size_t>(GetParam()));
  for (const Csc& a : seeded_matrices()) {
    symbolic::SymbolicResult par, ser;
    ASSERT_TRUE(symbolic::symbolic_symmetric(a, &par, &pool).is_ok());
    ASSERT_TRUE(symbolic::symbolic_symmetric_serial(a, &ser).is_ok());
    expect_bitwise_equal(par.filled, ser.filled);
    EXPECT_EQ(par.etree, ser.etree);
    EXPECT_EQ(par.nnz_l, ser.nnz_l);
    EXPECT_EQ(par.nnz_u, ser.nnz_u);
    EXPECT_EQ(par.nnz_lu, ser.nnz_lu);
  }
}

TEST_P(PreprocessParallelP, BlockLayoutMatchesSerial) {
  ThreadPool pool(static_cast<std::size_t>(GetParam()));
  for (const Csc& a : seeded_matrices()) {
    symbolic::SymbolicResult sym;
    ASSERT_TRUE(symbolic::symbolic_symmetric_serial(a, &sym).is_ok());
    for (index_t bs : {17, 32, 64}) {
      const auto par = block::BlockMatrix::from_filled(sym.filled, bs, &pool);
      const auto ser = block::BlockMatrix::from_filled_serial(sym.filled, bs);
      expect_same_layout(par, ser);
    }
  }
}

TEST_P(PreprocessParallelP, MappingMatchesSerial) {
  ThreadPool pool(static_cast<std::size_t>(GetParam()));
  for (const Csc& a : seeded_matrices()) {
    symbolic::SymbolicResult sym;
    ASSERT_TRUE(symbolic::symbolic_symmetric_serial(a, &sym).is_ok());
    const auto bm = block::BlockMatrix::from_filled_serial(sym.filled, 32);
    const auto tasks = block::enumerate_tasks(bm);
    for (rank_t ranks : {2, 4, 8}) {
      const auto grid = block::ProcessGrid::make(ranks);
      const auto cyc_par = block::cyclic_mapping(bm, grid, &pool);
      const auto cyc_ser = block::cyclic_mapping(bm, grid);
      EXPECT_EQ(cyc_par.owner, cyc_ser.owner);

      block::BalanceStats sp, ss;
      const auto bal_par =
          block::balanced_mapping(bm, tasks, grid, cyc_par, &sp, &pool);
      const auto bal_ser =
          block::balanced_mapping_serial(bm, tasks, grid, cyc_ser, &ss);
      EXPECT_EQ(bal_par.owner, bal_ser.owner);
      EXPECT_EQ(sp.swaps, ss.swaps);
      EXPECT_EQ(0, std::memcmp(&sp.max_weight_after, &ss.max_weight_after,
                               sizeof(double)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, PreprocessParallelP,
                         ::testing::Values(1, 2, 4, 8));

TEST(PreprocessParallel, TwoParallelRunsAgree) {
  // Different worker counts exercise different chunk interleavings; the
  // output must not depend on either.
  ThreadPool p3(3);
  ThreadPool p5(5);
  for (const Csc& a : seeded_matrices()) {
    symbolic::SymbolicResult r3, r5;
    ASSERT_TRUE(symbolic::symbolic_symmetric(a, &r3, &p3).is_ok());
    ASSERT_TRUE(symbolic::symbolic_symmetric(a, &r5, &p5).is_ok());
    expect_bitwise_equal(r3.filled, r5.filled);

    const auto bm3 = block::BlockMatrix::from_filled(r3.filled, 32, &p3);
    const auto bm5 = block::BlockMatrix::from_filled(r5.filled, 32, &p5);
    expect_same_layout(bm3, bm5);
  }
}

TEST(PreprocessParallel, RepeatedRunsOnOnePoolAgree) {
  // Scratch arena buffers are reused across runs without reset; stale marks
  // must never leak into a later result.
  ThreadPool pool(4);
  const Csc a = matgen::circuit(500, 2.5, 2.1, 7);
  symbolic::SymbolicResult first;
  ASSERT_TRUE(symbolic::symbolic_symmetric(a, &first, &pool).is_ok());
  for (int run = 0; run < 3; ++run) {
    symbolic::SymbolicResult again;
    ASSERT_TRUE(symbolic::symbolic_symmetric(a, &again, &pool).is_ok());
    expect_bitwise_equal(again.filled, first.filled);
  }
}

TEST(PreprocessParallel, SignedZeroMirrorsMatchReference) {
  // A matrix with explicit -0.0 entries: the symmetrised reference computes
  // a(r,j) + 0 for mirrored entries, which flips -0.0 to +0.0; the merge
  // path must reproduce that bit for bit.
  std::vector<nnz_t> ptr = {0, 2, 3, 4};
  std::vector<index_t> rows = {0, 2, 1, 2};
  std::vector<value_t> vals = {1.0, -0.0, 2.0, 3.0};
  const Csc a =
      Csc::from_parts(3, 3, std::move(ptr), std::move(rows), std::move(vals));
  ThreadPool pool(4);
  expect_bitwise_equal(symmetrized_with_diagonal(a, &pool),
                       a.symmetrized().with_full_diagonal());
}

}  // namespace
}  // namespace pangulu
