// Traffic-replay harness (solver/traffic.hpp): scenario DSL parsing with
// typed per-line errors, and the deterministic virtual-time replay —
// conservation of requests, deadline shedding, queue bounds, scale-down,
// and byte-stable repeatability.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "solver/traffic.hpp"

namespace pangulu::solver {
namespace {

const char* kStorm = R"(
# a comment line
scenario storm          # trailing comment
  kind solve_storm
  request refactorize
  requests 64
  overload 2.0
  deadline_mult 0.5
  deadline_mix on
  queue 12
  shed on
  scale_down_at 0.5
  jitter 0.2
  seed 7
end
scenario second
  request solve
  requests 8
end
)";

TEST(TrafficDsl, ParsesEveryDirective) {
  std::vector<TrafficScenario> scs;
  ASSERT_TRUE(parse_traffic_scenarios(kStorm, &scs).is_ok());
  ASSERT_EQ(scs.size(), 2u);
  const TrafficScenario& s = scs[0];
  EXPECT_EQ(s.name, "storm");
  EXPECT_EQ(s.kind, "solve_storm");
  EXPECT_EQ(s.request, "refactorize");
  EXPECT_EQ(s.requests, 64);
  EXPECT_DOUBLE_EQ(s.overload, 2.0);
  EXPECT_DOUBLE_EQ(s.deadline_mult, 0.5);
  EXPECT_TRUE(s.deadline_mix);
  EXPECT_EQ(s.queue, 12);
  EXPECT_TRUE(s.shed);
  EXPECT_DOUBLE_EQ(s.scale_down_at, 0.5);
  EXPECT_DOUBLE_EQ(s.jitter, 0.2);
  EXPECT_EQ(s.seed, 7u);
  // Unset directives keep their documented defaults.
  const TrafficScenario& d = scs[1];
  EXPECT_EQ(d.name, "second");
  EXPECT_EQ(d.request, "solve");
  EXPECT_EQ(d.requests, 8);
  EXPECT_TRUE(d.shed);
  EXPECT_LT(d.scale_down_at, 0.0);
}

TEST(TrafficDsl, TypedErrorsNameTheOffendingLine) {
  std::vector<TrafficScenario> scs;
  struct Case {
    const char* text;
    const char* needle;
  };
  const Case cases[] = {
      {"scenario a\nscenario b\nend\n", "nested"},
      {"end\n", "outside"},
      {"requests 5\n", "outside"},
      {"scenario a\n  bogus 1\nend\n", "unknown directive"},
      {"scenario a\n  request launder\nend\n", "unknown request kind"},
      {"scenario a\n  requests 0\nend\n", ">= 1"},
      {"scenario a\n  overload -2\nend\n", "> 0"},
      {"scenario a\n  jitter 1.0\nend\n", "[0, 1)"},
      {"scenario a\n  shed maybe\nend\n", "on/off"},
      {"scenario a\n  requests\nend\n", "needs a value"},
      {"scenario\nend\n", "needs a name"},
      {"scenario a\n  requests 5\n", "never ends"},
      {"# nothing here\n", "no scenarios"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.text);
    const Status st = parse_traffic_scenarios(c.text, &scs);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(st.message().find(c.needle), std::string::npos) << st.message();
  }
}

TEST(TrafficDsl, MissingFileIsIoError) {
  std::vector<TrafficScenario> scs;
  EXPECT_EQ(load_traffic_scenarios("/no/such/dir/x.trace", &scs).code(),
            StatusCode::kIoError);
}

TrafficScenario storm_scenario() {
  TrafficScenario sc;
  sc.name = "storm";
  sc.requests = 200;
  sc.overload = 2.0;
  sc.deadline_mult = 0.5;
  sc.queue = 16;
  sc.seed = 11;
  return sc;
}

TEST(TrafficReplay, DeterministicGivenSeed) {
  const TrafficScenario sc = storm_scenario();
  const TrafficShape shape{"small", 2};
  TrafficReport r1, r2;
  ASSERT_TRUE(replay_traffic(sc, shape, 0.01, &r1).is_ok());
  ASSERT_TRUE(replay_traffic(sc, shape, 0.01, &r2).is_ok());
  EXPECT_EQ(r1.admitted, r2.admitted);
  EXPECT_EQ(r1.shed, r2.shed);
  EXPECT_EQ(r1.rejected, r2.rejected);
  EXPECT_EQ(r1.p95_latency, r2.p95_latency);  // bitwise, not approximately
  EXPECT_EQ(r1.makespan_seconds, r2.makespan_seconds);

  // A different seed is a different trace.
  TrafficScenario other = sc;
  other.seed = 12;
  TrafficReport r3;
  ASSERT_TRUE(replay_traffic(other, shape, 0.01, &r3).is_ok());
  EXPECT_NE(r1.makespan_seconds, r3.makespan_seconds);
}

TEST(TrafficReplay, ConservesEveryOfferedRequest) {
  // admitted + shed + rejected == offered for every configuration: shed on
  // and off, bounded and unbounded queues, scale-down mid-trace.
  std::vector<TrafficScenario> variants;
  variants.push_back(storm_scenario());
  variants.push_back(storm_scenario());
  variants.back().shed = false;
  variants.back().deadline_mult = 0;
  variants.back().queue = 0;
  variants.push_back(storm_scenario());
  variants.back().scale_down_at = 0.4;
  variants.push_back(storm_scenario());
  variants.back().queue = 2;
  variants.back().deadline_mix = true;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    SCOPED_TRACE("variant " + std::to_string(i));
    for (int servers : {1, 2, 8}) {
      TrafficReport r;
      ASSERT_TRUE(
          replay_traffic(variants[i], {"s", servers}, 0.01, &r).is_ok());
      EXPECT_EQ(r.admitted + r.shed + r.rejected, r.offered);
      EXPECT_EQ(r.offered, variants[i].requests);
    }
  }
}

TEST(TrafficReplay, DeadlineShedKeepsLatencyBounded) {
  const TrafficShape shape{"small", 2};
  TrafficReport shed, noshed;
  TrafficScenario sc = storm_scenario();
  ASSERT_TRUE(replay_traffic(sc, shape, 0.01, &shed).is_ok());
  sc.shed = false;
  sc.deadline_mult = 0;
  sc.queue = 0;
  ASSERT_TRUE(replay_traffic(sc, shape, 0.01, &noshed).is_ok());
  EXPECT_GT(shed.shed, 0);
  EXPECT_EQ(noshed.shed, 0);
  EXPECT_EQ(noshed.admitted, noshed.offered);
  // The whole point: shedding trades completions for bounded latency.
  EXPECT_LT(shed.p95_latency, noshed.p95_latency);
  EXPECT_GT(shed.shed_rate, 0.0);
}

TEST(TrafficReplay, QueueBoundRejectsOverflow) {
  TrafficScenario sc = storm_scenario();
  sc.shed = false;
  sc.deadline_mult = 0;
  sc.queue = 2;
  TrafficReport r;
  ASSERT_TRUE(replay_traffic(sc, {"small", 2}, 0.01, &r).is_ok());
  EXPECT_GT(r.rejected, 0);
  EXPECT_LE(r.peak_queue_depth, 2);
}

TEST(TrafficReplay, ScaleDownStretchesTheDrain) {
  TrafficScenario sc = storm_scenario();
  sc.shed = false;
  sc.deadline_mult = 0;
  sc.queue = 0;
  TrafficReport full, halved;
  ASSERT_TRUE(replay_traffic(sc, {"large", 8}, 0.01, &full).is_ok());
  sc.scale_down_at = 0.25;
  ASSERT_TRUE(replay_traffic(sc, {"large", 8}, 0.01, &halved).is_ok());
  // Same arrivals, half the servers for most of the trace: the backlog
  // takes strictly longer to drain.
  EXPECT_GT(halved.makespan_seconds, full.makespan_seconds);
  EXPECT_GE(halved.p95_latency, full.p95_latency);
}

TEST(TrafficReplay, RejectsNonsenseInputs) {
  const TrafficScenario sc = storm_scenario();
  TrafficReport r;
  EXPECT_EQ(replay_traffic(sc, {"bad", 0}, 0.01, &r).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(replay_traffic(sc, {"ok", 2}, 0.0, &r).code(),
            StatusCode::kInvalidArgument);
  TrafficScenario empty = sc;
  empty.requests = 0;
  EXPECT_EQ(replay_traffic(empty, {"ok", 2}, 0.01, &r).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pangulu::solver
