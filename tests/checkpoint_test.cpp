// Checkpoint/restart + ABFT property tests: snapshots round-trip bitwise and
// reject corruption with typed errors; a factorisation killed mid-flight and
// resumed from its last checkpoint produces bitwise-identical factors and
// solutions to the uninterrupted run; injected silent bit flips are detected
// by the checksum audits and repaired by canonical replay; and the threaded
// executor repairs a flip under stop-the-world replay, finishing with the
// same bits as a clean run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "io/snapshot.hpp"
#include "matgen/generators.hpp"
#include "runtime/fault.hpp"
#include "runtime/sim.hpp"
#include "runtime/threaded.hpp"
#include "solver/solver.hpp"
#include "symbolic/fill.hpp"

namespace pangulu {
namespace {

using runtime::AbftLevel;
using runtime::FaultPlan;
using runtime::SimOptions;
using runtime::SimResult;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

struct Prepared {
  block::BlockMatrix bm;
  std::vector<block::Task> tasks;
  block::Mapping mapping;
};

Prepared prepare(const Csc& a, index_t block_size, rank_t ranks) {
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(a, &sym).check();
  Prepared p;
  p.bm = block::BlockMatrix::from_filled(sym.filled, block_size);
  p.tasks = block::enumerate_tasks(p.bm);
  p.mapping = block::cyclic_mapping(p.bm, block::ProcessGrid::make(ranks));
  return p;
}

template <class BM>
bool bitwise_equal(const BM& x, const BM& y) {
  const auto a = x.to_csc();
  const auto b = y.to_csc();
  if (a.nnz() != b.nnz()) return false;
  for (nnz_t p = 0; p < a.nnz(); ++p) {
    if (a.values()[static_cast<std::size_t>(p)] !=
            b.values()[static_cast<std::size_t>(p)] ||
        a.row_idx()[static_cast<std::size_t>(p)] !=
            b.row_idx()[static_cast<std::size_t>(p)])
      return false;
  }
  return true;
}

Status run(Prepared& p, rank_t ranks, const SimOptions& base,
           SimResult* res) {
  SimOptions opts = base;
  opts.n_ranks = ranks;
  opts.execute_numerics = true;
  return runtime::simulate_factorization(p.bm, p.tasks, p.mapping, opts, res);
}

io::Snapshot tiny_snapshot() {
  io::Snapshot s;
  s.meta.n = 2;
  s.meta.nnz_a = 3;
  s.meta.block_size = 2;
  s.meta.n_ranks = 1;
  s.meta.pivot_tol = 1e-14;
  s.meta.n_tasks = 1;
  s.meta.tasks_done = 0;
  s.a_col_ptr = {0, 2, 3};
  s.a_row_idx = {0, 1, 1};
  s.a_values = {4.0, -1.0, 3.0};
  s.counters = {0};
  s.block_nnz = {3};
  s.block_values = {4.0, -0.25, 3.0};
  return s;
}

// ---------------------------------------------------------------------------
// Snapshot wire format.
// ---------------------------------------------------------------------------

TEST(Snapshot, ChecksumIsCrc32c) {
  // Known-answer vector (RFC 3720 §B.4): CRC-32C("123456789"). Pins the
  // polynomial so neither the hardware path nor the table fallback can
  // drift from the on-disk format.
  const char digits[] = "123456789";
  EXPECT_EQ(io::crc32(digits, 9), 0xE3069283u);
  EXPECT_EQ(io::crc32(digits, 0), 0u);
  // Length sweep across the 8-byte kernel boundary: appending one byte must
  // always change the checksum (catches a stuck length/tail handoff).
  for (std::size_t len = 1; len < 9; ++len)
    EXPECT_NE(io::crc32(digits, len), io::crc32(digits, len - 1)) << len;
}

TEST(Snapshot, RoundTripsBitwise) {
  const io::Snapshot in = tiny_snapshot();
  std::stringstream ss;
  ASSERT_TRUE(io::write_snapshot(ss, in).is_ok());
  io::Snapshot out;
  ASSERT_TRUE(io::read_snapshot(ss, &out).is_ok());
  EXPECT_EQ(out.meta.n, in.meta.n);
  EXPECT_EQ(out.meta.nnz_a, in.meta.nnz_a);
  EXPECT_EQ(out.meta.tasks_done, in.meta.tasks_done);
  EXPECT_EQ(out.meta.pivot_tol, in.meta.pivot_tol);
  EXPECT_EQ(out.a_col_ptr, in.a_col_ptr);
  EXPECT_EQ(out.a_row_idx, in.a_row_idx);
  EXPECT_EQ(out.a_values, in.a_values);
  EXPECT_EQ(out.counters, in.counters);
  EXPECT_EQ(out.block_nnz, in.block_nnz);
  EXPECT_EQ(out.block_values, in.block_values);
}

TEST(Snapshot, CrcCatchesEveryFlippedPayloadByte) {
  std::stringstream ss;
  ASSERT_TRUE(io::write_snapshot(ss, tiny_snapshot()).is_ok());
  const std::string clean = ss.str();
  // Seeded sweep over the buffer: corrupt one byte at a time and demand a
  // typed failure every time (kDataCorruption for a payload byte,
  // kIoError when the header itself is mangled).
  int corruptions = 0;
  for (std::size_t pos = 0; pos < clean.size(); pos += 13) {
    std::string bad = clean;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    std::stringstream rs(bad);
    io::Snapshot out;
    Status s = io::read_snapshot(rs, &out);
    EXPECT_FALSE(s.is_ok()) << "flip at byte " << pos << " went unnoticed";
    EXPECT_TRUE(s.code() == StatusCode::kDataCorruption ||
                s.code() == StatusCode::kIoError)
        << "flip at byte " << pos << ": " << s.message();
    ++corruptions;
  }
  EXPECT_GT(corruptions, 10);
}

TEST(Snapshot, TruncationIsIoError) {
  std::stringstream ss;
  ASSERT_TRUE(io::write_snapshot(ss, tiny_snapshot()).is_ok());
  const std::string clean = ss.str();
  for (std::size_t len : {std::size_t(0), std::size_t(3), clean.size() / 2,
                          clean.size() - 1}) {
    std::stringstream rs(clean.substr(0, len));
    io::Snapshot out;
    EXPECT_EQ(io::read_snapshot(rs, &out).code(), StatusCode::kIoError)
        << "truncated to " << len << " bytes";
  }
}

TEST(Snapshot, WrongMagicOrVersionIsIoError) {
  std::stringstream ss;
  ASSERT_TRUE(io::write_snapshot(ss, tiny_snapshot()).is_ok());
  std::string bad = ss.str();
  bad[0] = 'X';  // magic
  std::stringstream r1(bad);
  io::Snapshot out;
  EXPECT_EQ(io::read_snapshot(r1, &out).code(), StatusCode::kIoError);

  bad = ss.str();
  bad[4] = static_cast<char>(io::kSnapshotFormatVersion + 1);  // version
  std::stringstream r2(bad);
  EXPECT_EQ(io::read_snapshot(r2, &out).code(), StatusCode::kIoError);
}

TEST(Snapshot, FileWriteIsAtomic) {
  const std::string path = temp_path("snap_atomic.bin");
  ASSERT_TRUE(io::write_snapshot_file(path, tiny_snapshot()).is_ok());
  // The temp staging file must be gone after the rename.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  io::Snapshot out;
  EXPECT_TRUE(io::read_snapshot_file(path, &out).is_ok());
  EXPECT_EQ(out.meta.n, 2);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Kill-and-resume through the Solver.
// ---------------------------------------------------------------------------

TEST(CheckpointRestart, KillAndResumeBitwiseIdentical) {
  for (std::uint64_t seed : {3ULL, 11ULL}) {
    Csc a = matgen::circuit(180, 2.0, 2.2, seed);
    const index_t n = a.n_cols();
    std::vector<value_t> b(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i)
      b[static_cast<std::size_t>(i)] = std::cos(static_cast<double>(i) + 1);

    solver::Options clean_opts;
    clean_opts.n_ranks = 4;
    solver::Solver clean;
    ASSERT_TRUE(clean.factorize(a, clean_opts).is_ok());
    std::vector<value_t> x_clean(static_cast<std::size_t>(n));
    ASSERT_TRUE(clean.solve(b, x_clean).is_ok());
    const auto nt = static_cast<index_t>(clean.stats().n_tasks);
    ASSERT_GT(nt, 8);

    for (double frac : {0.25, 0.5, 0.75}) {
      const auto kill = static_cast<index_t>(static_cast<double>(nt) * frac);
      const std::string path =
          temp_path("snap_kill_" + std::to_string(seed) + "_" +
                    std::to_string(kill) + ".bin");

      solver::Options kopts = clean_opts;
      kopts.checkpoint_path = path;
      kopts.checkpoint_interval_tasks = std::max<index_t>(1, nt / 16);
      kopts.abft_level = AbftLevel::kCheap;
      kopts.fault_plan.kill_after_task = kill;
      solver::Solver victim;
      Status s = victim.factorize(a, kopts);
      ASSERT_EQ(s.code(), StatusCode::kUnavailable) << s.message();

      solver::Solver revived;
      s = revived.resume_from(path);
      ASSERT_TRUE(s.is_ok()) << s.message();
      EXPECT_GT(revived.stats().resumed_from_task, 0);
      EXPECT_LE(revived.stats().resumed_from_task, kill);

      // Factors bitwise identical <=> solutions bitwise identical.
      std::vector<value_t> x_res(static_cast<std::size_t>(n));
      solver::SolveStats st_clean, st_res;
      ASSERT_TRUE(revived.solve(b, x_res, &st_res).is_ok());
      ASSERT_TRUE(clean.solve(b, x_clean, &st_clean).is_ok());
      for (index_t i = 0; i < n; ++i)
        ASSERT_EQ(x_clean[static_cast<std::size_t>(i)],
                  x_res[static_cast<std::size_t>(i)])
            << "seed " << seed << " kill " << kill << " row " << i;
      EXPECT_EQ(st_clean.final_residual, st_res.final_residual);
      std::remove(path.c_str());
    }
  }
}

TEST(CheckpointRestart, CheckpointsAreWrittenAtTheRequestedCadence) {
  Csc a = matgen::grid2d_laplacian(10, 10);
  const std::string path = temp_path("snap_cadence.bin");
  solver::Options opts;
  opts.n_ranks = 2;
  opts.checkpoint_path = path;
  opts.checkpoint_interval_tasks = 4;
  solver::Solver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  const auto nt = static_cast<std::int64_t>(s.stats().n_tasks);
  // done = 4, 8, ... strictly below nt.
  EXPECT_EQ(s.stats().sim.checkpoints_written, (nt - 1) / 4);
  std::remove(path.c_str());
}

TEST(CheckpointRestart, TamperedCountersFailThePrecondition) {
  Csc a = matgen::grid2d_laplacian(8, 8);
  const std::string path = temp_path("snap_tamper.bin");
  solver::Options opts;
  opts.n_ranks = 2;
  opts.checkpoint_path = path;
  opts.checkpoint_interval_tasks = 3;
  opts.fault_plan.kill_after_task = 6;
  solver::Solver victim;
  ASSERT_EQ(victim.factorize(a, opts).code(), StatusCode::kUnavailable);

  // Re-write the snapshot with a consistent CRC but inconsistent counters:
  // the structural cross-check (not the CRC) must reject it.
  io::Snapshot snap;
  ASSERT_TRUE(io::read_snapshot_file(path, &snap).is_ok());
  ASSERT_FALSE(snap.counters.empty());
  snap.counters[0] += 1;
  ASSERT_TRUE(io::write_snapshot_file(path, snap).is_ok());
  solver::Solver revived;
  EXPECT_EQ(revived.resume_from(path).code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointRestart, MissingFileIsIoError) {
  solver::Solver s;
  EXPECT_EQ(s.resume_from(temp_path("snap_nonexistent.bin")).code(),
            StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// ABFT: silent corruption detected and repaired in the canonical executor.
// ---------------------------------------------------------------------------

/// First GETRF task whose target block feeds a later task (so the audit of
/// that reader sees any corruption of the factorised diagonal block).
index_t first_read_getrf(const Prepared& p) {
  for (std::size_t t = 0; t < p.tasks.size(); ++t) {
    if (p.tasks[t].kind != block::TaskKind::kGetrf) continue;
    for (std::size_t u = t + 1; u < p.tasks.size(); ++u) {
      if (p.tasks[u].src_a == p.tasks[t].target ||
          p.tasks[u].src_b == p.tasks[t].target)
        return static_cast<index_t>(t);
    }
  }
  return -1;
}

TEST(Abft, BitFlipDetectedAndRecomputed) {
  const rank_t ranks = 2;
  Csc a = matgen::grid2d_laplacian(9, 9);
  Prepared clean = prepare(a, 16, ranks);
  SimResult clean_res;
  ASSERT_TRUE(run(clean, ranks, SimOptions{}, &clean_res).is_ok());

  Prepared flipped = prepare(a, 16, ranks);
  const index_t t0 = first_read_getrf(flipped);
  ASSERT_GE(t0, 0);
  FaultPlan::BitFlip flip;
  flip.after_task = t0;
  flip.block_pos = flipped.tasks[static_cast<std::size_t>(t0)].target;
  flip.value_index = 0;
  flip.bit = 52;  // mantissa-exponent boundary: a large, silent error

  // Unprotected: the flip silently lands in the factors.
  SimOptions unprot;
  unprot.faults.bitflips.push_back(flip);
  SimResult unprot_res;
  ASSERT_TRUE(run(flipped, ranks, unprot, &unprot_res).is_ok());
  EXPECT_FALSE(bitwise_equal(clean.bm, flipped.bm));
  EXPECT_EQ(unprot_res.abft_detected, 0);

  // Cheap audits: detected at the first read, recomputed, factors restored.
  Prepared guarded = prepare(a, 16, ranks);
  SimOptions prot;
  prot.faults.bitflips.push_back(flip);
  prot.abft = AbftLevel::kCheap;
  SimResult prot_res;
  Status s = run(guarded, ranks, prot, &prot_res);
  ASSERT_TRUE(s.is_ok()) << s.message();
  EXPECT_GT(prot_res.abft_audits, 0);
  EXPECT_GE(prot_res.abft_detected, 1);
  EXPECT_GE(prot_res.abft_recomputed, 1);
  EXPECT_TRUE(bitwise_equal(clean.bm, guarded.bm));
}

TEST(Abft, Fp32BitFlipDetectedAndRecomputed) {
  // The precision-aware twin of BitFlipDetectedAndRecomputed: checksums are
  // computed over the active value type (FNV-1a over FP32 bytes), the flip
  // lands at the FP32 word width, and replay repair restores the FP32
  // factors bit for bit (DESIGN.md §14).
  const rank_t ranks = 2;
  Csc a = matgen::grid2d_laplacian(9, 9);
  Prepared base = prepare(a, 16, ranks);
  const index_t t0 = first_read_getrf(base);
  ASSERT_GE(t0, 0);
  FaultPlan::BitFlip flip;
  flip.after_task = t0;
  flip.block_pos = base.tasks[static_cast<std::size_t>(t0)].target;
  flip.value_index = 0;
  flip.bit = 23;  // FP32 mantissa-exponent boundary: large and silent

  auto clean = block::BlockMatrixT<float>::converted_from(base.bm);
  SimOptions copts;
  copts.n_ranks = ranks;
  SimResult cres;
  ASSERT_TRUE(runtime::simulate_factorization(clean, base.tasks, base.mapping,
                                              copts, &cres)
                  .is_ok());

  // Unprotected: the flip silently lands in the FP32 factors.
  auto flipped = block::BlockMatrixT<float>::converted_from(base.bm);
  SimOptions unprot = copts;
  unprot.faults.bitflips.push_back(flip);
  SimResult ures;
  ASSERT_TRUE(runtime::simulate_factorization(flipped, base.tasks,
                                              base.mapping, unprot, &ures)
                  .is_ok());
  EXPECT_EQ(ures.abft_detected, 0);
  EXPECT_FALSE(bitwise_equal(clean, flipped));

  // Cheap audits over the FP32 checksums: detected, recomputed, restored.
  auto guarded = block::BlockMatrixT<float>::converted_from(base.bm);
  SimOptions prot = copts;
  prot.faults.bitflips.push_back(flip);
  prot.abft = AbftLevel::kCheap;
  SimResult pres;
  Status s = runtime::simulate_factorization(guarded, base.tasks, base.mapping,
                                             prot, &pres);
  ASSERT_TRUE(s.is_ok()) << s.message();
  EXPECT_GT(pres.abft_audits, 0);
  EXPECT_GE(pres.abft_detected, 1);
  EXPECT_GE(pres.abft_recomputed, 1);
  EXPECT_TRUE(bitwise_equal(clean, guarded));
}

TEST(Abft, FinalSweepCatchesWhatCheapAuditsCannot) {
  const rank_t ranks = 2;
  Csc a = matgen::grid2d_laplacian(8, 8);
  Prepared clean = prepare(a, 16, ranks);
  SimResult clean_res;
  ASSERT_TRUE(run(clean, ranks, SimOptions{}, &clean_res).is_ok());
  const auto nt = static_cast<index_t>(clean.tasks.size());

  // Corrupt the last commit: no later task reads it, so only the full
  // level's final sweep can see it.
  FaultPlan::BitFlip flip;
  flip.after_task = nt - 1;
  flip.block_pos = clean.tasks[static_cast<std::size_t>(nt - 1)].target;
  flip.value_index = 0;
  flip.bit = 50;

  Prepared cheap = prepare(a, 16, ranks);
  SimOptions copts;
  copts.faults.bitflips.push_back(flip);
  copts.abft = AbftLevel::kCheap;
  SimResult cres;
  ASSERT_TRUE(run(cheap, ranks, copts, &cres).is_ok());
  EXPECT_EQ(cres.abft_detected, 0);
  EXPECT_FALSE(bitwise_equal(clean.bm, cheap.bm));

  Prepared full = prepare(a, 16, ranks);
  SimOptions fopts;
  fopts.faults.bitflips.push_back(flip);
  fopts.abft = AbftLevel::kFull;
  SimResult fres;
  Status s = run(full, ranks, fopts, &fres);
  ASSERT_TRUE(s.is_ok()) << s.message();
  EXPECT_GE(fres.abft_detected, 1);
  EXPECT_GE(fres.abft_recomputed, 1);
  EXPECT_TRUE(bitwise_equal(clean.bm, full.bm));
}

TEST(Abft, CleanRunsAuditWithoutFiring) {
  const rank_t ranks = 2;
  Csc a = matgen::grid2d_laplacian(8, 8);
  Prepared clean = prepare(a, 16, ranks);
  SimResult r0;
  ASSERT_TRUE(run(clean, ranks, SimOptions{}, &r0).is_ok());
  for (AbftLevel lvl : {AbftLevel::kCheap, AbftLevel::kFull}) {
    Prepared p = prepare(a, 16, ranks);
    SimOptions opts;
    opts.abft = lvl;
    SimResult res;
    ASSERT_TRUE(run(p, ranks, opts, &res).is_ok());
    EXPECT_GT(res.abft_audits, 0);
    EXPECT_EQ(res.abft_detected, 0);
    EXPECT_EQ(res.abft_recomputed, 0);
    EXPECT_TRUE(bitwise_equal(clean.bm, p.bm));
  }
}

// ---------------------------------------------------------------------------
// ABFT under true concurrency: stop-the-world replay repair.
// ---------------------------------------------------------------------------

TEST(Abft, ThreadedExecutorRepairsCorruption) {
  const rank_t ranks = 2;
  Csc a = matgen::grid2d_laplacian(9, 9);

  // Reference factors from a clean threaded run.
  Prepared clean = prepare(a, 16, ranks);
  runtime::ThreadedOptions clean_opts;
  clean_opts.n_ranks = ranks;
  clean_opts.abft = AbftLevel::kCheap;
  ASSERT_TRUE(
      runtime::threaded_factorize(clean.bm, clean.tasks, clean.mapping,
                                  clean_opts)
          .is_ok());

  Prepared p = prepare(a, 16, ranks);
  const index_t t0 = first_read_getrf(p);
  ASSERT_GE(t0, 0);

  runtime::ThreadedOptions topts;
  topts.n_ranks = ranks;
  topts.abft = AbftLevel::kCheap;
  runtime::AbftStats stats;
  topts.abft_stats = &stats;
  FaultPlan::BitFlip flip;
  flip.after_task = t0;
  flip.block_pos = p.tasks[static_cast<std::size_t>(t0)].target;
  flip.value_index = 0;
  flip.bit = 52;
  topts.bitflips.push_back(flip);
  Status s = runtime::threaded_factorize(p.bm, p.tasks, p.mapping, topts);
  ASSERT_TRUE(s.is_ok()) << s.message();
  // The flip lands after the target's finaliser published its checksum, so
  // the first reader detects it and the replay repair restores the exact
  // published bits — the corrupted run ends bitwise identical to clean.
  EXPECT_GE(stats.detected, 1);
  EXPECT_GE(stats.recomputed, 1);
  EXPECT_GT(stats.audits, 0);
  EXPECT_TRUE(bitwise_equal(clean.bm, p.bm));

  // A clean run audits without ever firing the repair path.
  Prepared q = prepare(a, 16, ranks);
  runtime::AbftStats qstats;
  runtime::ThreadedOptions qopts;
  qopts.n_ranks = ranks;
  qopts.abft = AbftLevel::kCheap;
  qopts.abft_stats = &qstats;
  ASSERT_TRUE(
      runtime::threaded_factorize(q.bm, q.tasks, q.mapping, qopts).is_ok());
  EXPECT_EQ(qstats.detected, 0);
  EXPECT_EQ(qstats.recomputed, 0);
  EXPECT_TRUE(bitwise_equal(clean.bm, q.bm));
}

}  // namespace
}  // namespace pangulu
