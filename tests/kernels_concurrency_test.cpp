// Concurrency stress for the "G_" kernel variants: on this host they run on
// a thread pool, and the point of these tests is to exercise the
// interleavings (hardware_concurrency is 1 here, so the module tests would
// otherwise run the parallel code paths effectively serially). Each test
// repeats the kernel under a wide pool and demands bit-stable agreement
// with the serial result.
#include <gtest/gtest.h>

#include "kernels/getrf.hpp"
#include "kernels/gessm.hpp"
#include "kernels/ssssm.hpp"
#include "kernels/tstrf.hpp"
#include "matgen/generators.hpp"
#include "test_util.hpp"

namespace pangulu::kernels {
namespace {

using test::add_product_pattern;
using test::close_lower_solve_pattern;
using test::close_lu_pattern;
using test::close_upper_solve_pattern;

constexpr int kTrials = 8;

TEST(Concurrency, GetrfSfluStableAcrossInterleavings) {
  ThreadPool pool(6);
  Csc base = close_lu_pattern(matgen::random_sparse(160, 7, 3));
  Workspace ws;
  Csc serial = base;
  ASSERT_TRUE(getrf(GetrfVariant::kGV1, serial, ws, nullptr, {}, nullptr).is_ok());
  for (int trial = 0; trial < kTrials; ++trial) {
    for (auto v : {GetrfVariant::kGV1, GetrfVariant::kGV2}) {
      Csc work = base;
      ASSERT_TRUE(getrf(v, work, ws, nullptr, {}, &pool).is_ok());
      ASSERT_TRUE(work.approx_equal(serial, 1e-12))
          << to_string(v) << " trial " << trial;
    }
  }
}

TEST(Concurrency, PanelKernelsStableAcrossInterleavings) {
  ThreadPool pool(6);
  Workspace ws;
  Csc diag = close_lu_pattern(matgen::random_sparse(96, 6, 11));
  ASSERT_TRUE(getrf(GetrfVariant::kCV1, diag, ws, nullptr).is_ok());

  Csc bg = close_lower_solve_pattern(diag, matgen::random_rect(96, 80, 0.2, 12));
  Csc gessm_serial = bg;
  ASSERT_TRUE(gessm(PanelVariant::kCV1, diag, gessm_serial, ws).is_ok());

  Csc bt = close_upper_solve_pattern(diag, matgen::random_rect(80, 96, 0.2, 13));
  Csc tstrf_serial = bt;
  ASSERT_TRUE(tstrf(PanelVariant::kCV1, diag, tstrf_serial, ws).is_ok());

  for (int trial = 0; trial < kTrials; ++trial) {
    for (auto v : {PanelVariant::kGV1, PanelVariant::kGV2, PanelVariant::kGV3,
                   PanelVariant::kGV4}) {
      Csc work = bg;
      ASSERT_TRUE(gessm(v, diag, work, ws, &pool).is_ok());
      ASSERT_TRUE(work.approx_equal(gessm_serial, 1e-12))
          << "GESSM " << to_string(v) << " trial " << trial;
      Csc workt = bt;
      ASSERT_TRUE(tstrf(v, diag, workt, ws, &pool).is_ok());
      ASSERT_TRUE(workt.approx_equal(tstrf_serial, 1e-12))
          << "TSTRF " << to_string(v) << " trial " << trial;
    }
  }
}

TEST(Concurrency, SsssmStableAcrossInterleavings) {
  ThreadPool pool(6);
  Workspace ws;
  Csc a = matgen::random_rect(90, 90, 0.15, 21);
  Csc b = matgen::random_rect(90, 90, 0.15, 22);
  Csc c = add_product_pattern(a, b, matgen::random_rect(90, 90, 0.1, 23));
  Csc serial = c;
  ASSERT_TRUE(ssssm(SsssmVariant::kCV2, a, b, serial, ws).is_ok());
  for (int trial = 0; trial < kTrials; ++trial) {
    for (auto v : {SsssmVariant::kGV1, SsssmVariant::kGV2,
                   SsssmVariant::kGV3}) {
      Csc work = c;
      ASSERT_TRUE(ssssm(v, a, b, work, ws, &pool).is_ok());
      ASSERT_TRUE(work.approx_equal(serial, 1e-12))
          << to_string(v) << " trial " << trial;
    }
  }
}

TEST(Concurrency, ManyPoolSizes) {
  Csc base = close_lu_pattern(matgen::random_sparse(128, 6, 31));
  Workspace ws;
  Csc serial = base;
  ASSERT_TRUE(getrf(GetrfVariant::kGV2, serial, ws, nullptr, {}, nullptr).is_ok());
  for (std::size_t threads : {2u, 3u, 5u, 8u}) {
    ThreadPool pool(threads);
    Csc work = base;
    ASSERT_TRUE(getrf(GetrfVariant::kGV2, work, ws, nullptr, {}, &pool).is_ok());
    EXPECT_TRUE(work.approx_equal(serial, 1e-12)) << threads << " threads";
  }
}

}  // namespace
}  // namespace pangulu::kernels
