#include <gtest/gtest.h>

#include "matgen/generators.hpp"
#include "ordering/amd.hpp"
#include "ordering/min_degree.hpp"
#include "ordering/reorder.hpp"
#include "sparse/ops.hpp"
#include "symbolic/col_counts.hpp"

namespace pangulu::ordering {
namespace {

class AmdP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AmdP, ValidPermutationOnRandomGraphs) {
  Csc m = matgen::random_sparse(80, 4, GetParam());
  Graph g = Graph::from_matrix(m);
  auto perm = amd(g);
  EXPECT_TRUE(is_permutation(perm));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AmdP, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Amd, FillQualityNearExactMinDegree) {
  // AMD's approximate degrees may lose a little fill quality to the exact
  // algorithm but must stay in the same ballpark (and far below natural).
  for (const char* name : {"ecology1", "ASIC_680k", "nlpkkt80"}) {
    SCOPED_TRACE(name);
    Csc m = matgen::paper_matrix(name, 0.25);
    Graph g = Graph::from_matrix(m);
    auto p_amd = amd(g);
    auto p_md = min_degree(g);
    ASSERT_TRUE(is_permutation(p_amd));
    const nnz_t f_amd = symbolic::estimate_fill(m.permuted(p_amd, p_amd));
    const nnz_t f_md = symbolic::estimate_fill(m.permuted(p_md, p_md));
    const nnz_t f_nat = symbolic::estimate_fill(m);
    EXPECT_LE(f_amd, 2 * f_md) << "AMD within 2x of exact minimum degree";
    EXPECT_LT(f_amd, f_nat) << "AMD beats the natural ordering";
  }
}

TEST(Amd, SupervariablesOnCliqueyGraphs) {
  // A fem3d matrix has identical-adjacency dof groups: AMD must still emit a
  // valid permutation when coalescing kicks in.
  Csc m = matgen::fem3d(4, 4, 4, 3, 5);
  Graph g = Graph::from_matrix(m);
  auto perm = amd(g);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(Amd, TinyGraphs) {
  for (index_t n : {1, 2, 3}) {
    Coo coo(n, n);
    for (index_t i = 0; i < n; ++i) {
      coo.add(i, i, 1.0);
      if (i + 1 < n) {
        coo.add(i + 1, i, 1.0);
        coo.add(i, i + 1, 1.0);
      }
    }
    Graph g = Graph::from_matrix(Csc::from_coo(coo));
    EXPECT_TRUE(is_permutation(amd(g))) << n;
  }
}

TEST(Amd, SolvesThroughFullPipeline) {
  Csc a = matgen::circuit(200, 2.0, 2.2, 77);
  ReorderOptions opts;
  opts.fill_reducing = FillReducing::kAmd;
  ReorderResult r;
  ASSERT_TRUE(reorder(a, opts, &r).is_ok());
  EXPECT_TRUE(is_permutation(r.row_perm));
  EXPECT_TRUE(is_permutation(r.col_perm));
}

}  // namespace
}  // namespace pangulu::ordering
