#include <gtest/gtest.h>

#include <tuple>

#include "kernels/getrf.hpp"
#include "kernels/gessm.hpp"
#include "kernels/selector.hpp"
#include "kernels/ssssm.hpp"
#include "kernels/tstrf.hpp"
#include "matgen/generators.hpp"
#include "sparse/dense.hpp"
#include "test_util.hpp"

namespace pangulu::kernels {
namespace {

using test::add_product_pattern;
using test::close_lower_solve_pattern;
using test::close_lu_pattern;
using test::close_upper_solve_pattern;

// ---------------------------------------------------------------- GETRF ----

class GetrfP : public ::testing::TestWithParam<
                   std::tuple<GetrfVariant, index_t, double, std::uint64_t>> {};

TEST_P(GetrfP, MatchesDenseReference) {
  auto [variant, n, density, seed] = GetParam();
  Csc a = close_lu_pattern(
      matgen::random_sparse(n, std::max<index_t>(2, static_cast<index_t>(density * n)),
                            seed));
  Csc ref = a;
  ASSERT_TRUE(getrf_reference(ref).is_ok());
  Workspace ws;
  PivotStats stats;
  ASSERT_TRUE(getrf(variant, a, ws, &stats).is_ok());
  EXPECT_TRUE(a.approx_equal(ref, 1e-10))
      << to_string(variant) << " diverges from the dense reference";
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsSizesSeeds, GetrfP,
    ::testing::Combine(::testing::Values(GetrfVariant::kCV1, GetrfVariant::kGV1,
                                         GetrfVariant::kGV2),
                       ::testing::Values<index_t>(1, 5, 32, 96),
                       ::testing::Values(0.05, 0.2),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(Getrf, VariantsAgreeWithEachOther) {
  Csc base = close_lu_pattern(matgen::random_sparse(64, 6, 99));
  Workspace ws;
  Csc a1 = base, a2 = base, a3 = base;
  ASSERT_TRUE(getrf(GetrfVariant::kCV1, a1, ws, nullptr).is_ok());
  ASSERT_TRUE(getrf(GetrfVariant::kGV1, a2, ws, nullptr).is_ok());
  ASSERT_TRUE(getrf(GetrfVariant::kGV2, a3, ws, nullptr).is_ok());
  EXPECT_TRUE(a1.approx_equal(a2, 1e-12));
  EXPECT_TRUE(a1.approx_equal(a3, 1e-12));
}

TEST(Getrf, LUProductReconstructsInput) {
  Csc a = close_lu_pattern(matgen::random_sparse(48, 5, 4));
  Csc orig = a;
  Workspace ws;
  ASSERT_TRUE(getrf(GetrfVariant::kCV1, a, ws, nullptr).is_ok());
  // Rebuild L*U densely and compare to the original values.
  Dense lu = Dense::from_csc(a);
  const index_t n = a.n_cols();
  Dense l(n, n), u(n, n);
  for (index_t j = 0; j < n; ++j) {
    l(j, j) = 1.0;
    for (index_t i = 0; i < n; ++i) {
      if (i > j)
        l(i, j) = lu(i, j);
      else
        u(i, j) = lu(i, j);
    }
  }
  Dense prod(n, n);
  Dense::gemm_sub(l, u, prod);  // prod = -L*U
  Dense od = Dense::from_csc(orig);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(-prod(i, j), od(i, j), 1e-9 * (1 + std::abs(od(i, j))));
}

TEST(Getrf, PerturbsSingularPivot) {
  // A block whose (1,1) pivot cancels to zero exactly.
  Coo coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 1, 1.0);  // Schur complement of (1,1) is exactly 0
  Csc a = Csc::from_coo(coo);
  Workspace ws;
  PivotStats stats;
  ASSERT_TRUE(getrf(GetrfVariant::kCV1, a, ws, &stats).is_ok());
  EXPECT_EQ(stats.perturbed, 1);
  EXPECT_NE(a.at(1, 1), 0.0);
}

TEST(Getrf, RejectsNonSquare) {
  Csc a = matgen::random_rect(3, 4, 0.5, 1);
  Workspace ws;
  EXPECT_FALSE(getrf(GetrfVariant::kCV1, a, ws, nullptr).is_ok());
}

TEST(Getrf, ParallelVariantMatchesSerialOnPool) {
  ThreadPool pool(4);
  Csc base = close_lu_pattern(matgen::random_sparse(128, 8, 7));
  Workspace ws;
  Csc serial = base, parallel = base;
  ASSERT_TRUE(getrf(GetrfVariant::kGV1, serial, ws, nullptr, {}, nullptr).is_ok());
  ASSERT_TRUE(getrf(GetrfVariant::kGV1, parallel, ws, nullptr, {}, &pool).is_ok());
  EXPECT_TRUE(serial.approx_equal(parallel, 1e-12));
}

// ---------------------------------------------------------------- GESSM ----

class PanelP : public ::testing::TestWithParam<
                   std::tuple<PanelVariant, index_t, index_t, std::uint64_t>> {};

TEST_P(PanelP, GessmMatchesReference) {
  auto [variant, n, bcols, seed] = GetParam();
  Csc diag = close_lu_pattern(matgen::random_sparse(n, 4, seed));
  Workspace ws;
  ASSERT_TRUE(getrf(GetrfVariant::kCV1, diag, ws, nullptr).is_ok());
  Csc b0 = matgen::random_rect(n, bcols, 0.25, seed + 1000);
  Csc b = close_lower_solve_pattern(diag, b0);
  Csc ref = b;
  ASSERT_TRUE(gessm_reference(diag, ref).is_ok());
  ASSERT_TRUE(gessm(variant, diag, b, ws).is_ok());
  EXPECT_TRUE(b.approx_equal(ref, 1e-10)) << to_string(variant);
}

TEST_P(PanelP, TstrfMatchesReference) {
  auto [variant, n, brows, seed] = GetParam();
  Csc diag = close_lu_pattern(matgen::random_sparse(n, 4, seed + 7));
  Workspace ws;
  ASSERT_TRUE(getrf(GetrfVariant::kCV1, diag, ws, nullptr).is_ok());
  Csc b0 = matgen::random_rect(brows, n, 0.25, seed + 2000);
  Csc b = close_upper_solve_pattern(diag, b0);
  Csc ref = b;
  ASSERT_TRUE(tstrf_reference(diag, ref).is_ok());
  ASSERT_TRUE(tstrf(variant, diag, b, ws).is_ok());
  EXPECT_TRUE(b.approx_equal(ref, 1e-9)) << to_string(variant);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsShapes, PanelP,
    ::testing::Combine(::testing::Values(PanelVariant::kCV1, PanelVariant::kCV2,
                                         PanelVariant::kGV1, PanelVariant::kGV2,
                                         PanelVariant::kGV3, PanelVariant::kGV4),
                       ::testing::Values<index_t>(6, 24, 64),
                       ::testing::Values<index_t>(1, 16, 48),
                       ::testing::Values<std::uint64_t>(11, 12)));

TEST(Gessm, AllVariantsAgree) {
  Csc diag = close_lu_pattern(matgen::random_sparse(40, 5, 31));
  Workspace ws;
  ASSERT_TRUE(getrf(GetrfVariant::kCV1, diag, ws, nullptr).is_ok());
  Csc b = close_lower_solve_pattern(diag, matgen::random_rect(40, 30, 0.3, 32));
  Csc first;
  for (auto v : {PanelVariant::kCV1, PanelVariant::kCV2, PanelVariant::kGV1,
                 PanelVariant::kGV2, PanelVariant::kGV3, PanelVariant::kGV4}) {
    Csc work = b;
    ASSERT_TRUE(gessm(v, diag, work, ws).is_ok());
    if (first.n_rows() == 0)
      first = work;
    else
      EXPECT_TRUE(first.approx_equal(work, 1e-12)) << to_string(v);
  }
}

TEST(Tstrf, AllVariantsAgree) {
  Csc diag = close_lu_pattern(matgen::random_sparse(40, 5, 41));
  Workspace ws;
  ASSERT_TRUE(getrf(GetrfVariant::kCV1, diag, ws, nullptr).is_ok());
  Csc b = close_upper_solve_pattern(diag, matgen::random_rect(30, 40, 0.3, 42));
  Csc first;
  for (auto v : {PanelVariant::kCV1, PanelVariant::kCV2, PanelVariant::kGV1,
                 PanelVariant::kGV2, PanelVariant::kGV3, PanelVariant::kGV4}) {
    Csc work = b;
    ASSERT_TRUE(tstrf(v, diag, work, ws).is_ok());
    if (first.n_rows() == 0)
      first = work;
    else
      EXPECT_TRUE(first.approx_equal(work, 1e-12)) << to_string(v);
  }
}

TEST(Gessm, RejectsDimensionMismatch) {
  Csc diag = close_lu_pattern(matgen::random_sparse(8, 3, 1));
  Csc b = matgen::random_rect(9, 4, 0.5, 2);
  Workspace ws;
  EXPECT_FALSE(gessm(PanelVariant::kCV1, diag, b, ws).is_ok());
}

TEST(Tstrf, RejectsDimensionMismatch) {
  Csc diag = close_lu_pattern(matgen::random_sparse(8, 3, 1));
  Csc b = matgen::random_rect(4, 9, 0.5, 2);
  Workspace ws;
  EXPECT_FALSE(tstrf(PanelVariant::kCV1, diag, b, ws).is_ok());
}

// ---------------------------------------------------------------- SSSSM ----

class SsssmP : public ::testing::TestWithParam<
                   std::tuple<SsssmVariant, index_t, double, std::uint64_t>> {};

TEST_P(SsssmP, MatchesDenseReference) {
  auto [variant, n, density, seed] = GetParam();
  Csc a = matgen::random_rect(n, n, density, seed);
  Csc b = matgen::random_rect(n, n, density, seed + 1);
  Csc c0 = matgen::random_rect(n, n, density, seed + 2);
  Csc c = add_product_pattern(a, b, c0);
  Csc ref = c;
  ASSERT_TRUE(ssssm_reference(a, b, ref).is_ok());
  Workspace ws;
  ASSERT_TRUE(ssssm(variant, a, b, c, ws).is_ok());
  EXPECT_TRUE(c.approx_equal(ref, 1e-10)) << to_string(variant);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsSizes, SsssmP,
    ::testing::Combine(::testing::Values(SsssmVariant::kCV1, SsssmVariant::kCV2,
                                         SsssmVariant::kCV3, SsssmVariant::kGV1,
                                         SsssmVariant::kGV2, SsssmVariant::kGV3),
                       ::testing::Values<index_t>(4, 20, 64),
                       ::testing::Values(0.05, 0.3),
                       ::testing::Values<std::uint64_t>(5, 6)));

TEST(Ssssm, RectangularShapes) {
  Csc a = matgen::random_rect(20, 12, 0.3, 8);
  Csc b = matgen::random_rect(12, 28, 0.3, 9);
  Csc c = add_product_pattern(a, b, matgen::random_rect(20, 28, 0.1, 10));
  Csc ref = c;
  ASSERT_TRUE(ssssm_reference(a, b, ref).is_ok());
  Workspace ws;
  for (auto v : {SsssmVariant::kCV1, SsssmVariant::kCV2, SsssmVariant::kCV3,
                 SsssmVariant::kGV1, SsssmVariant::kGV2, SsssmVariant::kGV3}) {
    Csc work = c;
    ASSERT_TRUE(ssssm(v, a, b, work, ws).is_ok());
    EXPECT_TRUE(work.approx_equal(ref, 1e-11)) << to_string(v);
  }
}

TEST(Ssssm, RejectsShapeMismatch) {
  Csc a = matgen::random_rect(4, 5, 0.5, 1);
  Csc b = matgen::random_rect(6, 3, 0.5, 2);  // inner dim mismatch
  Csc c = matgen::random_rect(4, 3, 0.5, 3);
  Workspace ws;
  EXPECT_FALSE(ssssm(SsssmVariant::kCV1, a, b, c, ws).is_ok());
}

TEST(Ssssm, EmptyOperandsLeaveTargetUnchanged) {
  Csc a(5, 5);  // all-empty
  Csc b = matgen::random_rect(5, 5, 0.4, 4);
  Csc c = matgen::random_rect(5, 5, 0.4, 5);
  Csc before = c;
  Workspace ws;
  ASSERT_TRUE(ssssm(SsssmVariant::kGV1, a, b, c, ws).is_ok());
  EXPECT_TRUE(c.approx_equal(before, 0.0));
}

// ---------------------------------------------------------------- FLOPs ----

TEST(Flops, SsssmCountsInnerProducts) {
  // A: one full column k=0 with 3 entries; B: row 0 has 2 entries.
  Coo ca(3, 2), cb(2, 4);
  for (int i = 0; i < 3; ++i) ca.add(i, 0, 1.0);
  cb.add(0, 1, 1.0);
  cb.add(0, 3, 1.0);
  EXPECT_DOUBLE_EQ(ssssm_flops(Csc::from_coo(ca), Csc::from_coo(cb)),
                   2.0 * 3 * 2);
}

TEST(Flops, GetrfDenseBlockMatchesClosedForm) {
  // Fully dense n x n block: flops = sum_k (n-k-1) + 2(n-k-1)^2.
  const index_t n = 10;
  Csc a = close_lu_pattern(matgen::random_sparse(n, n, 1, false));
  double expect = 0;
  for (index_t k = 0; k < n; ++k) {
    double lk = n - k - 1;
    expect += lk + 2 * lk * lk;
  }
  // The closed pattern of a dense-ish random matrix is fully dense.
  if (a.nnz() == static_cast<nnz_t>(n) * n) {
    EXPECT_DOUBLE_EQ(getrf_flops(a), expect);
  } else {
    GTEST_SKIP() << "pattern not fully dense for this seed";
  }
}

// ------------------------------------------------------------- Selector ----

TEST(Selector, GetrfTreeFollowsFigure8) {
  EXPECT_EQ(select_getrf(100), GetrfVariant::kCV1);
  EXPECT_EQ(select_getrf(7000), GetrfVariant::kGV1);
  EXPECT_EQ(select_getrf(50000), GetrfVariant::kGV2);
}

TEST(Selector, GessmTreeFollowsFigure8) {
  EXPECT_EQ(select_gessm(100, 10), PanelVariant::kCV1);
  EXPECT_EQ(select_gessm(5000, 10), PanelVariant::kCV2);
  EXPECT_EQ(select_gessm(10000, 10), PanelVariant::kGV1);
  EXPECT_EQ(select_gessm(15000, 10), PanelVariant::kGV2);
  EXPECT_EQ(select_gessm(100000, 10), PanelVariant::kGV3);
  // Huge diagonal block: CPU guard.
  EXPECT_EQ(select_gessm(100000, 10000000), PanelVariant::kCV2);
  EXPECT_EQ(select_gessm(100, 10000000), PanelVariant::kCV1);
}

TEST(Selector, TstrfTreeFollowsFigure8) {
  EXPECT_EQ(select_tstrf(100, 10), PanelVariant::kCV1);
  EXPECT_EQ(select_tstrf(5000, 10), PanelVariant::kCV2);
  EXPECT_EQ(select_tstrf(8000, 10), PanelVariant::kGV1);
  EXPECT_EQ(select_tstrf(15000, 10), PanelVariant::kGV2);
  EXPECT_EQ(select_tstrf(1000000, 10), PanelVariant::kGV3);
}

TEST(Selector, SsssmTreeFollowsFigure8) {
  EXPECT_EQ(select_ssssm(1e3), SsssmVariant::kCV2);
  EXPECT_EQ(select_ssssm(1e5), SsssmVariant::kCV3);  // merge band
  EXPECT_EQ(select_ssssm(1e6), SsssmVariant::kCV1);
  EXPECT_EQ(select_ssssm(1e8), SsssmVariant::kGV1);
  EXPECT_EQ(select_ssssm(1e10), SsssmVariant::kGV2);
}

TEST(Selector, PanelMergeBandIsOptIn) {
  // The G_V4 (merge) band is empty with default thresholds (== the G_V1
  // cut) and opens only when a calibration run widens it.
  EXPECT_EQ(select_gessm(13000, 10), PanelVariant::kGV2);
  SelectorThresholds t;
  t.gessm_gv4_nnz = 15000;
  t.tstrf_gv4_nnz = 15000;
  EXPECT_EQ(select_gessm(13000, 10, t), PanelVariant::kGV4);
  EXPECT_EQ(select_tstrf(12000, 10, t), PanelVariant::kGV4);
}

}  // namespace
}  // namespace pangulu::kernels
