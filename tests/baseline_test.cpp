#include <gtest/gtest.h>

#include "baseline/supernodal.hpp"
#include "matgen/generators.hpp"
#include "solver/solver.hpp"
#include "sparse/ops.hpp"

namespace pangulu::baseline {
namespace {

std::vector<value_t> make_rhs(const Csc& a) {
  std::vector<value_t> ones(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  a.spmv(ones, b);
  return b;
}

TEST(Supernodal, SolvesGridLaplacian) {
  Csc a = matgen::grid2d_laplacian(14, 14);
  SupernodalSolver s;
  ASSERT_TRUE(s.factorize(a, {}).is_ok());
  auto b = make_rhs(a);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
  ASSERT_TRUE(s.solve(b, x).is_ok());
  EXPECT_LT(relative_residual(a, x, b), 1e-8);
}

TEST(Supernodal, SolvesCircuitMatrix) {
  Csc a = matgen::circuit(200, 2.0, 2.2, 13);
  SupernodalSolver s;
  ASSERT_TRUE(s.factorize(a, {}).is_ok());
  auto b = make_rhs(a);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
  ASSERT_TRUE(s.solve(b, x).is_ok());
  EXPECT_LT(relative_residual(a, x, b), 1e-8);
}

TEST(Supernodal, AgreesWithPanguLuSolution) {
  Csc a = matgen::fem3d(4, 4, 3, 2, 7);
  auto b = make_rhs(a);
  std::vector<value_t> x_base(static_cast<std::size_t>(a.n_cols()));
  std::vector<value_t> x_pangu(static_cast<std::size_t>(a.n_cols()));

  SupernodalSolver base;
  ASSERT_TRUE(base.factorize(a, {}).is_ok());
  ASSERT_TRUE(base.solve(b, x_base).is_ok());

  solver::Solver pangu;
  ASSERT_TRUE(pangu.factorize(a, {}).is_ok());
  ASSERT_TRUE(pangu.solve(b, x_pangu).is_ok());

  for (std::size_t i = 0; i < x_base.size(); ++i)
    EXPECT_NEAR(x_base[i], x_pangu[i], 1e-6);
}

TEST(Supernodal, StoredNnzAtLeastPatternNnz) {
  Csc a = matgen::circuit(250, 2.0, 2.2, 5);
  SupernodalSolver s;
  ASSERT_TRUE(s.factorize(a, {}).is_ok());
  // Dense panels with padding can only store more than the sparse pattern.
  EXPECT_GE(s.stats().nnz_lu_stored, s.stats().nnz_lu_pattern);
  EXPECT_GE(s.stats().flops_dense, s.stats().flops_sparse);
  EXPECT_GT(s.stats().n_supernodes, 0);
}

TEST(Supernodal, MultiRankLevelSetAccumulatesSyncTime) {
  Csc a = matgen::grid3d_laplacian(9, 9, 9);
  SupernodalOptions o1, o8;
  o1.n_ranks = 1;
  o8.n_ranks = 8;
  o1.execute_numerics = o8.execute_numerics = false;
  SupernodalSolver s1, s8;
  ASSERT_TRUE(s1.factorize(a, o1).is_ok());
  ASSERT_TRUE(s8.factorize(a, o8).is_ok());
  EXPECT_EQ(s1.stats().sim.avg_sync, 0.0);
  EXPECT_GT(s8.stats().sim.avg_sync, 0.0);
  // At test-sized matrices the BSP schedule is barrier-bound, so 8 ranks may
  // not beat 1; the bound only guards against pathological blow-ups.
  EXPECT_LT(s8.stats().sim.makespan, s1.stats().sim.makespan * 3.0);
}

TEST(Supernodal, RetimeMatchesFactorizeTiming) {
  Csc a = matgen::grid3d_laplacian(6, 6, 6);
  SupernodalOptions opts;
  opts.n_ranks = 4;
  opts.execute_numerics = false;
  SupernodalSolver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  runtime::SimResult re;
  ASSERT_TRUE(s.retime(4, opts.device, &re).is_ok());
  EXPECT_DOUBLE_EQ(re.makespan, s.stats().sim.makespan);
  EXPECT_DOUBLE_EQ(re.avg_sync, s.stats().sim.avg_sync);
  // A different rank count re-times without re-factorising.
  runtime::SimResult r16;
  ASSERT_TRUE(s.retime(16, opts.device, &r16).is_ok());
  EXPECT_NE(r16.makespan, re.makespan);
}

TEST(Supernodal, RetimeBeforeFactorizeFails) {
  SupernodalSolver s;
  runtime::SimResult r;
  EXPECT_FALSE(s.retime(4, runtime::DeviceModel::a100_like(), &r).is_ok());
}

TEST(Supernodal, GemmDensityRecordingWorks) {
  Csc a = matgen::fem3d(4, 4, 3, 1, 11);
  SupernodalOptions opts;
  opts.record_gemm_density = true;
  SupernodalSolver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  // FEM matrices have Schur updates; density samples must be in (0, 100].
  ASSERT_FALSE(s.stats().gemm_density.empty());
  for (const auto& g : s.stats().gemm_density) {
    EXPECT_GT(g.a, 0.0);
    EXPECT_LE(g.a, 100.0);
    EXPECT_GT(g.b, 0.0);
    EXPECT_LE(g.b, 100.0);
    EXPECT_GE(g.c, 0.0);
    EXPECT_LE(g.c, 100.0);
  }
}

TEST(Supernodal, RejectsRectangular) {
  SupernodalSolver s;
  EXPECT_FALSE(s.factorize(matgen::random_rect(5, 6, 0.4, 1), {}).is_ok());
}

TEST(Supernodal, SolveBeforeFactorizeFails) {
  SupernodalSolver s;
  std::vector<value_t> b(4, 1.0), x(4);
  EXPECT_FALSE(s.solve(b, x).is_ok());
}

TEST(Supernodal, PanelBoundsRespected) {
  Csc a = matgen::circuit(300, 2.0, 2.2, 23);
  SupernodalOptions opts;
  opts.min_panel = 4;
  opts.max_panel = 16;
  SupernodalSolver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  // Reconstructing the partition from stats: supernode count must be
  // consistent with the width cap.
  EXPECT_GE(s.stats().n_supernodes,
            (a.n_cols() + opts.max_panel - 1) / opts.max_panel);
}

}  // namespace
}  // namespace pangulu::baseline
