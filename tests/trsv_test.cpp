#include <gtest/gtest.h>

#include "block/mapping.hpp"
#include "matgen/generators.hpp"
#include "runtime/sim.hpp"
#include "runtime/trsv_sim.hpp"
#include "solver/solver.hpp"
#include "sparse/ops.hpp"
#include "symbolic/fill.hpp"

namespace pangulu::runtime {
namespace {

struct Factored {
  block::BlockMatrix bm;
  block::Mapping mapping;
};

Factored factorize_blocks(const Csc& a, index_t block_size, rank_t ranks) {
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(a, &sym).check();
  Factored f;
  f.bm = block::BlockMatrix::from_filled(sym.filled, block_size);
  auto tasks = block::enumerate_tasks(f.bm);
  f.mapping = block::cyclic_mapping(f.bm, block::ProcessGrid::make(ranks));
  SimOptions opts;
  opts.n_ranks = ranks;
  SimResult res;
  simulate_factorization(f.bm, tasks, f.mapping, opts, &res).check();
  return f;
}

class TrsvP : public ::testing::TestWithParam<rank_t> {};

TEST_P(TrsvP, ForwardBackwardSolvesSystem) {
  const rank_t ranks = GetParam();
  Csc a = matgen::grid2d_laplacian(14, 14);
  Factored f = factorize_blocks(a, 20, ranks);

  // Solve A x = b via distributed L then U sweeps; the reorder step was
  // skipped (identity perms), so the factors apply to `a` directly.
  std::vector<value_t> x_true(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  a.spmv(x_true, b);

  TrsvOptions opts;
  opts.n_ranks = ranks;
  SimResult fwd, bwd;
  ASSERT_TRUE(simulate_trsv(f.bm, f.mapping, /*lower=*/true, b, opts, &fwd).is_ok());
  ASSERT_TRUE(simulate_trsv(f.bm, f.mapping, /*lower=*/false, b, opts, &bwd).is_ok());

  for (index_t i = 0; i < a.n_cols(); ++i)
    EXPECT_NEAR(b[static_cast<std::size_t>(i)], 1.0, 1e-8);
  EXPECT_GT(fwd.makespan, 0);
  EXPECT_GT(bwd.makespan, 0);
  if (ranks > 1) {
    EXPECT_GE(fwd.messages, 0);
  } else {
    EXPECT_EQ(fwd.messages, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, TrsvP, ::testing::Values<rank_t>(1, 2, 4, 8));

TEST(Trsv, MatchesSerialBlockSolve) {
  Csc a = matgen::circuit(300, 2.0, 2.2, 7);
  // Use the solver's serial block solves as the reference on the same
  // factors (no reordering: compare raw triangular sweeps).
  Factored f = factorize_blocks(a, 32, 4);

  std::vector<value_t> rhs(static_cast<std::size_t>(a.n_cols()));
  for (index_t i = 0; i < a.n_cols(); ++i)
    rhs[static_cast<std::size_t>(i)] = 0.01 * i - 1.0;

  std::vector<value_t> serial = rhs;
  solver::block_lower_solve(f.bm, serial);
  solver::block_upper_solve(f.bm, serial);

  std::vector<value_t> distributed = rhs;
  TrsvOptions opts;
  opts.n_ranks = 4;
  SimResult r1, r2;
  ASSERT_TRUE(
      simulate_trsv(f.bm, f.mapping, true, distributed, opts, &r1).is_ok());
  ASSERT_TRUE(
      simulate_trsv(f.bm, f.mapping, false, distributed, opts, &r2).is_ok());

  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_NEAR(distributed[i], serial[i], 1e-10 * (1 + std::abs(serial[i])));
}

TEST(Trsv, TimingOnlyRunLeavesVectorUntouched) {
  Csc a = matgen::grid2d_laplacian(8, 8);
  Factored f = factorize_blocks(a, 16, 2);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()), 3.0);
  std::vector<value_t> before = x;
  TrsvOptions opts;
  opts.n_ranks = 2;
  opts.execute_numerics = false;
  SimResult res;
  ASSERT_TRUE(simulate_trsv(f.bm, f.mapping, true, x, opts, &res).is_ok());
  EXPECT_EQ(x, before);
  EXPECT_GT(res.makespan, 0);
}

TEST(Trsv, RejectsBadInputs) {
  Csc a = matgen::grid2d_laplacian(6, 6);
  Factored f = factorize_blocks(a, 12, 2);
  std::vector<value_t> wrong_size(10, 0.0);
  TrsvOptions opts;
  opts.n_ranks = 2;
  SimResult res;
  EXPECT_FALSE(
      simulate_trsv(f.bm, f.mapping, true, wrong_size, opts, &res).is_ok());
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()), 0.0);
  opts.n_ranks = 3;  // mapping is for 2 ranks
  EXPECT_FALSE(simulate_trsv(f.bm, f.mapping, true, x, opts, &res).is_ok());
}

TEST(Trsv, PlanBasedRunMatchesLegacyBitwise) {
  Csc a = matgen::circuit(300, 2.0, 2.2, 7);
  Factored f = factorize_blocks(a, 32, 4);
  std::vector<value_t> rhs(static_cast<std::size_t>(a.n_cols()));
  for (index_t i = 0; i < a.n_cols(); ++i)
    rhs[static_cast<std::size_t>(i)] = 0.01 * i - 1.0;

  TrsvOptions opts;
  opts.n_ranks = 4;
  for (bool lower : {true, false}) {
    std::vector<value_t> x_legacy = rhs;
    std::vector<value_t> x_plan = rhs;
    SimResult r_legacy, r_plan;
    ASSERT_TRUE(
        simulate_trsv(f.bm, f.mapping, lower, x_legacy, opts, &r_legacy)
            .is_ok());
    TrsvPlan plan;
    ASSERT_TRUE(build_trsv_plan(f.bm, f.mapping, lower, opts, &plan).is_ok());
    ASSERT_TRUE(simulate_trsv(f.bm, plan, x_plan, opts, &r_plan).is_ok());
    EXPECT_EQ(x_plan, x_legacy);  // operator== on doubles: bitwise-exact path
    EXPECT_EQ(r_plan.makespan, r_legacy.makespan);
    EXPECT_EQ(r_plan.messages, r_legacy.messages);
    EXPECT_EQ(r_plan.bytes, r_legacy.bytes);
  }
}

TEST(Trsv, PlanReuseAcrossRepeatSolves) {
  Csc a = matgen::grid2d_laplacian(12, 12);
  Factored f = factorize_blocks(a, 24, 4);
  TrsvOptions opts;
  opts.n_ranks = 4;
  TrsvPlan fwd, bwd;
  ASSERT_TRUE(build_trsv_plan(f.bm, f.mapping, true, opts, &fwd).is_ok());
  ASSERT_TRUE(build_trsv_plan(f.bm, f.mapping, false, opts, &bwd).is_ok());

  std::vector<value_t> x_true(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> b0(static_cast<std::size_t>(a.n_rows()));
  a.spmv(x_true, b0);

  // The same plans drive many solves; every run must reach the solution and
  // report the same virtual schedule (the plan is read-only during a run).
  SimResult first_fwd, first_bwd;
  for (int run = 0; run < 3; ++run) {
    std::vector<value_t> b = b0;
    SimResult rf, rb;
    ASSERT_TRUE(simulate_trsv(f.bm, fwd, b, opts, &rf).is_ok());
    ASSERT_TRUE(simulate_trsv(f.bm, bwd, b, opts, &rb).is_ok());
    for (index_t i = 0; i < a.n_cols(); ++i)
      EXPECT_NEAR(b[static_cast<std::size_t>(i)], 1.0, 1e-8);
    if (run == 0) {
      first_fwd = rf;
      first_bwd = rb;
    } else {
      EXPECT_EQ(rf.makespan, first_fwd.makespan);
      EXPECT_EQ(rb.makespan, first_bwd.makespan);
      EXPECT_EQ(rf.messages, first_fwd.messages);
      EXPECT_EQ(rb.messages, first_bwd.messages);
    }
  }
}

TEST(Trsv, PlanRejectsMismatchedOptions) {
  Csc a = matgen::grid2d_laplacian(6, 6);
  Factored f = factorize_blocks(a, 12, 2);
  TrsvOptions opts;
  opts.n_ranks = 2;
  TrsvPlan plan;
  ASSERT_TRUE(build_trsv_plan(f.bm, f.mapping, true, opts, &plan).is_ok());
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()), 0.0);
  SimResult res;
  TrsvOptions bad = opts;
  bad.n_ranks = 3;
  EXPECT_FALSE(simulate_trsv(f.bm, plan, x, bad, &res).is_ok());
  std::vector<value_t> wrong_size(10, 0.0);
  EXPECT_FALSE(simulate_trsv(f.bm, plan, wrong_size, opts, &res).is_ok());
}

TEST(Trsv, MoreRanksReduceMakespanOnHeavyFactors) {
  Csc a = matgen::banded_random(700, 60, 0.5, 4, 9);
  Factored f1 = factorize_blocks(a, 100, 1);
  Factored f8 = factorize_blocks(a, 100, 8);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()), 1.0);
  TrsvOptions o1, o8;
  o1.n_ranks = 1;
  o8.n_ranks = 8;
  o1.execute_numerics = o8.execute_numerics = false;
  SimResult r1, r8;
  ASSERT_TRUE(simulate_trsv(f1.bm, f1.mapping, true, x, o1, &r1).is_ok());
  ASSERT_TRUE(simulate_trsv(f8.bm, f8.mapping, true, x, o8, &r8).is_ok());
  EXPECT_LT(r8.makespan, r1.makespan * 1.2)
      << "triangular solve has limited parallelism but must not collapse";
}

TEST(Trsv, SolverPlansSurviveRepeatAndTransposeSolves) {
  Csc a = matgen::circuit(250, 2.0, 2.2, 21);
  const index_t n = a.n_cols();
  solver::Solver s;
  solver::Options opts;
  opts.n_ranks = 4;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());

  std::vector<value_t> x_true(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    x_true[static_cast<std::size_t>(i)] = 1.0 + 0.001 * i;
  std::vector<value_t> b(static_cast<std::size_t>(n));
  a.spmv(x_true, b);

  // Repeat solves reuse the cached schedules and must agree exactly.
  std::vector<value_t> x1(static_cast<std::size_t>(n));
  std::vector<value_t> x2(static_cast<std::size_t>(n));
  ASSERT_TRUE(s.solve(b, x1).is_ok());
  ASSERT_TRUE(s.solve(b, x2).is_ok());
  EXPECT_EQ(x1, x2);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(x1[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-6);

  // Transpose solves share the same plan.
  Csc at = a.transpose();
  std::vector<value_t> bt(static_cast<std::size_t>(n));
  at.spmv(x_true, bt);
  std::vector<value_t> y1(static_cast<std::size_t>(n));
  std::vector<value_t> y2(static_cast<std::size_t>(n));
  ASSERT_TRUE(s.solve_transpose(bt, y1).is_ok());
  ASSERT_TRUE(s.solve_transpose(bt, y2).is_ok());
  EXPECT_EQ(y1, y2);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(y1[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-6);

  // Re-factorisation with new values invalidates and rebuilds the plans.
  Csc a2 = a;
  for (auto& v : a2.values_mut()) v *= 2.0;
  ASSERT_TRUE(s.refactorize(a2).is_ok());
  std::vector<value_t> b2(static_cast<std::size_t>(n));
  a2.spmv(x_true, b2);
  std::vector<value_t> x3(static_cast<std::size_t>(n));
  ASSERT_TRUE(s.solve(b2, x3).is_ok());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(x3[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-6);

  runtime::SimResult fwd, bwd;
  ASSERT_TRUE(s.model_triangular_solve(&fwd, &bwd).is_ok());
  EXPECT_GT(fwd.makespan, 0);
  EXPECT_GT(bwd.makespan, 0);
}

// Solve-phase elasticity: drains/adds fire at diagonal-solve commit
// boundaries (quiesce -> Mapping::rebalance -> I6 re-proof -> continue),
// and because the numerics run in canonical sweep order, both sweeps stay
// bitwise identical to the static run for ANY elastic plan.
TEST(TrsvElastic, DrainMidSolveBitwiseIdenticalToStatic) {
  Csc a = matgen::grid2d_laplacian(20, 20);
  Factored f = factorize_blocks(a, 20, 4);
  std::vector<value_t> x_static(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> x_elastic = x_static;

  TrsvOptions opts;
  opts.n_ranks = 4;
  for (bool lower : {true, false}) {
    SCOPED_TRACE(lower ? "lower" : "upper");
    SimResult rs, re;
    ASSERT_TRUE(
        simulate_trsv(f.bm, f.mapping, lower, x_static, opts, &rs).is_ok());
    TrsvOptions eopts = opts;
    eopts.elastic.drains.push_back({1, 5});
    eopts.elastic.drains.push_back({2, 10});
    eopts.mapping = &f.mapping;
    ASSERT_TRUE(
        simulate_trsv(f.bm, f.mapping, lower, x_elastic, eopts, &re).is_ok());
    EXPECT_EQ(x_static, x_elastic);
    EXPECT_EQ(re.ranks_drained, 2);
    EXPECT_GT(re.migrated_blocks, 0);
    EXPECT_EQ(rs.ranks_drained, 0);
  }
}

TEST(TrsvElastic, AddStartsInactiveThenJoinsBitwiseIdentical) {
  Csc a = matgen::circuit(300, 2.0, 2.2, 7);
  Factored f = factorize_blocks(a, 24, 4);
  std::vector<value_t> x_static(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> x_elastic = x_static;

  TrsvOptions opts;
  opts.n_ranks = 4;
  SimResult rs, re;
  ASSERT_TRUE(
      simulate_trsv(f.bm, f.mapping, true, x_static, opts, &rs).is_ok());
  // Rank 3's first event is an add: it starts the solve inactive (its
  // blocks rebalance away up front) and joins at commit 6.
  TrsvOptions eopts = opts;
  eopts.elastic.adds.push_back({3, 6});
  eopts.mapping = &f.mapping;
  ASSERT_TRUE(
      simulate_trsv(f.bm, f.mapping, true, x_elastic, eopts, &re).is_ok());
  EXPECT_EQ(x_static, x_elastic);
  EXPECT_EQ(re.ranks_added, 1);
}

TEST(TrsvElastic, PlanRequiresTheMapping) {
  Csc a = matgen::grid2d_laplacian(10, 10);
  Factored f = factorize_blocks(a, 20, 2);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()), 1.0);
  TrsvOptions opts;
  opts.n_ranks = 2;
  opts.elastic.drains.push_back({1, 2});
  // opts.mapping deliberately left null.
  SimResult res;
  const Status st = simulate_trsv(f.bm, f.mapping, true, x, opts, &res);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.message();
}

TEST(TrsvElastic, DrainBelowMinRanksShedsLoad) {
  Csc a = matgen::grid2d_laplacian(10, 10);
  Factored f = factorize_blocks(a, 20, 2);
  std::vector<value_t> sentinel_x(static_cast<std::size_t>(a.n_cols()), 7.5);
  std::vector<value_t> x = sentinel_x;
  TrsvOptions opts;
  opts.n_ranks = 2;
  opts.elastic.drains.push_back({0, 1});
  opts.elastic.drains.push_back({1, 2});
  opts.elastic.min_ranks = 1;
  opts.mapping = &f.mapping;
  SimResult res;
  const Status st = simulate_trsv(f.bm, f.mapping, true, x, opts, &res);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.message();
  // A failed elastic solve leaves the vector untouched (phase 1 runs the
  // timing replay before any numerics execute).
  EXPECT_EQ(x, sentinel_x);
}

TEST(TrsvElastic, InvalidPlanRejectedTyped) {
  Csc a = matgen::grid2d_laplacian(10, 10);
  Factored f = factorize_blocks(a, 20, 2);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()), 1.0);
  TrsvOptions opts;
  opts.n_ranks = 2;
  opts.elastic.drains.push_back({7, 2});  // rank id out of range
  opts.mapping = &f.mapping;
  SimResult res;
  EXPECT_FALSE(simulate_trsv(f.bm, f.mapping, true, x, opts, &res).is_ok());
}

// Virtual-clock deadline on the solve phase: the timing replay runs before
// the canonical numerics, so a virtual-deadline miss sheds with the
// caller's vector bitwise untouched, and a budget at the static makespan
// still completes with the static answer.
TEST(TrsvVirtualDeadline, ShedsWithVectorUntouched) {
  Csc a = matgen::grid2d_laplacian(14, 14);
  Factored f = factorize_blocks(a, 20, 4);
  std::vector<value_t> x_static(static_cast<std::size_t>(a.n_cols()), 1.0);
  TrsvOptions opts;
  opts.n_ranks = 4;
  SimResult rs;
  ASSERT_TRUE(
      simulate_trsv(f.bm, f.mapping, true, x_static, opts, &rs).is_ok());
  ASSERT_GT(rs.makespan, 0);

  CancelToken tight;
  tight.set_virtual_deadline(rs.makespan / 2);
  TrsvOptions topts = opts;
  topts.cancel = &tight;
  std::vector<value_t> sentinel_x(static_cast<std::size_t>(a.n_cols()), 7.5);
  std::vector<value_t> x = sentinel_x;
  SimResult res;
  const Status st = simulate_trsv(f.bm, f.mapping, true, x, topts, &res);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.message();
  EXPECT_EQ(x, sentinel_x);

  CancelToken roomy;
  roomy.set_virtual_deadline(rs.makespan);
  topts.cancel = &roomy;
  x.assign(static_cast<std::size_t>(a.n_cols()), 1.0);  // the static run's RHS
  ASSERT_TRUE(simulate_trsv(f.bm, f.mapping, true, x, topts, &res).is_ok());
  EXPECT_EQ(x, x_static);
}

}  // namespace
}  // namespace pangulu::runtime
