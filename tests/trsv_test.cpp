#include <gtest/gtest.h>

#include "block/mapping.hpp"
#include "matgen/generators.hpp"
#include "runtime/sim.hpp"
#include "runtime/trsv_sim.hpp"
#include "solver/solver.hpp"
#include "sparse/ops.hpp"
#include "symbolic/fill.hpp"

namespace pangulu::runtime {
namespace {

struct Factored {
  block::BlockMatrix bm;
  block::Mapping mapping;
};

Factored factorize_blocks(const Csc& a, index_t block_size, rank_t ranks) {
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(a, &sym).check();
  Factored f;
  f.bm = block::BlockMatrix::from_filled(sym.filled, block_size);
  auto tasks = block::enumerate_tasks(f.bm);
  f.mapping = block::cyclic_mapping(f.bm, block::ProcessGrid::make(ranks));
  SimOptions opts;
  opts.n_ranks = ranks;
  SimResult res;
  simulate_factorization(f.bm, tasks, f.mapping, opts, &res).check();
  return f;
}

class TrsvP : public ::testing::TestWithParam<rank_t> {};

TEST_P(TrsvP, ForwardBackwardSolvesSystem) {
  const rank_t ranks = GetParam();
  Csc a = matgen::grid2d_laplacian(14, 14);
  Factored f = factorize_blocks(a, 20, ranks);

  // Solve A x = b via distributed L then U sweeps; the reorder step was
  // skipped (identity perms), so the factors apply to `a` directly.
  std::vector<value_t> x_true(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  a.spmv(x_true, b);

  TrsvOptions opts;
  opts.n_ranks = ranks;
  SimResult fwd, bwd;
  ASSERT_TRUE(simulate_trsv(f.bm, f.mapping, /*lower=*/true, b, opts, &fwd).is_ok());
  ASSERT_TRUE(simulate_trsv(f.bm, f.mapping, /*lower=*/false, b, opts, &bwd).is_ok());

  for (index_t i = 0; i < a.n_cols(); ++i)
    EXPECT_NEAR(b[static_cast<std::size_t>(i)], 1.0, 1e-8);
  EXPECT_GT(fwd.makespan, 0);
  EXPECT_GT(bwd.makespan, 0);
  if (ranks > 1) {
    EXPECT_GE(fwd.messages, 0);
  } else {
    EXPECT_EQ(fwd.messages, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, TrsvP, ::testing::Values<rank_t>(1, 2, 4, 8));

TEST(Trsv, MatchesSerialBlockSolve) {
  Csc a = matgen::circuit(300, 2.0, 2.2, 7);
  // Use the solver's serial block solves as the reference on the same
  // factors (no reordering: compare raw triangular sweeps).
  Factored f = factorize_blocks(a, 32, 4);

  std::vector<value_t> rhs(static_cast<std::size_t>(a.n_cols()));
  for (index_t i = 0; i < a.n_cols(); ++i)
    rhs[static_cast<std::size_t>(i)] = 0.01 * i - 1.0;

  std::vector<value_t> serial = rhs;
  solver::block_lower_solve(f.bm, serial);
  solver::block_upper_solve(f.bm, serial);

  std::vector<value_t> distributed = rhs;
  TrsvOptions opts;
  opts.n_ranks = 4;
  SimResult r1, r2;
  ASSERT_TRUE(
      simulate_trsv(f.bm, f.mapping, true, distributed, opts, &r1).is_ok());
  ASSERT_TRUE(
      simulate_trsv(f.bm, f.mapping, false, distributed, opts, &r2).is_ok());

  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_NEAR(distributed[i], serial[i], 1e-10 * (1 + std::abs(serial[i])));
}

TEST(Trsv, TimingOnlyRunLeavesVectorUntouched) {
  Csc a = matgen::grid2d_laplacian(8, 8);
  Factored f = factorize_blocks(a, 16, 2);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()), 3.0);
  std::vector<value_t> before = x;
  TrsvOptions opts;
  opts.n_ranks = 2;
  opts.execute_numerics = false;
  SimResult res;
  ASSERT_TRUE(simulate_trsv(f.bm, f.mapping, true, x, opts, &res).is_ok());
  EXPECT_EQ(x, before);
  EXPECT_GT(res.makespan, 0);
}

TEST(Trsv, RejectsBadInputs) {
  Csc a = matgen::grid2d_laplacian(6, 6);
  Factored f = factorize_blocks(a, 12, 2);
  std::vector<value_t> wrong_size(10, 0.0);
  TrsvOptions opts;
  opts.n_ranks = 2;
  SimResult res;
  EXPECT_FALSE(
      simulate_trsv(f.bm, f.mapping, true, wrong_size, opts, &res).is_ok());
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()), 0.0);
  opts.n_ranks = 3;  // mapping is for 2 ranks
  EXPECT_FALSE(simulate_trsv(f.bm, f.mapping, true, x, opts, &res).is_ok());
}

TEST(Trsv, MoreRanksReduceMakespanOnHeavyFactors) {
  Csc a = matgen::banded_random(700, 60, 0.5, 4, 9);
  Factored f1 = factorize_blocks(a, 100, 1);
  Factored f8 = factorize_blocks(a, 100, 8);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()), 1.0);
  TrsvOptions o1, o8;
  o1.n_ranks = 1;
  o8.n_ranks = 8;
  o1.execute_numerics = o8.execute_numerics = false;
  SimResult r1, r8;
  ASSERT_TRUE(simulate_trsv(f1.bm, f1.mapping, true, x, o1, &r1).is_ok());
  ASSERT_TRUE(simulate_trsv(f8.bm, f8.mapping, true, x, o8, &r8).is_ok());
  EXPECT_LT(r8.makespan, r1.makespan * 1.2)
      << "triangular solve has limited parallelism but must not collapse";
}

}  // namespace
}  // namespace pangulu::runtime
