// Property tests of the fault-injection and recovery layer (runtime/fault):
// over seeded fault plans, a recoverable run must produce bitwise-identical
// LU factors and solutions to the fault-free run — only virtual makespan and
// traffic may change — while the protocol counters fire exactly when faults
// do, and unrecoverable plans degrade to StatusCode::kUnavailable instead of
// crashing or hanging.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "matgen/generators.hpp"
#include "runtime/fault.hpp"
#include "runtime/sim.hpp"
#include "solver/solver.hpp"
#include "symbolic/fill.hpp"

namespace pangulu::runtime {
namespace {

struct Prepared {
  block::BlockMatrix bm;
  std::vector<block::Task> tasks;
  block::Mapping mapping;
};

Prepared prepare(const Csc& a, index_t block_size, rank_t ranks) {
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(a, &sym).check();
  Prepared p;
  p.bm = block::BlockMatrix::from_filled(sym.filled, block_size);
  p.tasks = block::enumerate_tasks(p.bm);
  p.mapping = block::cyclic_mapping(p.bm, block::ProcessGrid::make(ranks));
  return p;
}

/// Bitwise equality of two factorised block matrices (same pattern assumed).
bool bitwise_equal(const block::BlockMatrix& x, const block::BlockMatrix& y) {
  const Csc a = x.to_csc();
  const Csc b = y.to_csc();
  if (a.nnz() != b.nnz()) return false;
  for (nnz_t p = 0; p < a.nnz(); ++p) {
    if (a.values()[static_cast<std::size_t>(p)] !=
        b.values()[static_cast<std::size_t>(p)])
      return false;
    if (a.row_idx()[static_cast<std::size_t>(p)] !=
        b.row_idx()[static_cast<std::size_t>(p)])
      return false;
  }
  return true;
}

SimResult run(Prepared& p, rank_t ranks, const FaultPlan& plan,
              ScheduleMode mode = ScheduleMode::kSyncFree,
              bool execute = true) {
  SimOptions opts;
  opts.n_ranks = ranks;
  opts.schedule = mode;
  opts.execute_numerics = execute;
  opts.faults = plan;
  SimResult res;
  simulate_factorization(p.bm, p.tasks, p.mapping, opts, &res).check();
  return res;
}

TEST(FaultPlan, ValidateRejectsMalformedPlans) {
  FaultPlan p;
  p.drop_prob = 1.5;
  EXPECT_EQ(p.validate(4).code(), StatusCode::kInvalidArgument);
  p = FaultPlan{};
  p.crashes.push_back({7, 0.1});
  EXPECT_EQ(p.validate(4).code(), StatusCode::kInvalidArgument);
  p = FaultPlan{};
  p.slowdowns.push_back({0, 0.0, 0.5});  // "slowdown" that speeds up
  EXPECT_EQ(p.validate(4).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(FaultPlan{}.validate(1).is_ok());
}

TEST(FaultPlan, CrashingEveryRankIsUnavailableUpFront) {
  FaultPlan p;
  for (rank_t r = 0; r < 4; ++r) p.crashes.push_back({r, 1e-4});
  EXPECT_EQ(p.validate(4).code(), StatusCode::kUnavailable);
  // ... and a single-rank "cluster" cannot survive any crash.
  FaultPlan solo;
  solo.crashes.push_back({0, 1e-4});
  EXPECT_EQ(solo.validate(1).code(), StatusCode::kUnavailable);
}

TEST(FaultInjection, EnumerationOrderIsTopological) {
  Csc a = matgen::grid2d_laplacian(9, 9);
  Prepared p = prepare(a, 16, 4);
  EXPECT_TRUE(block::is_topological_order(p.bm, p.tasks));
}

TEST(FaultInjection, RemapFailedRankSpreadsBlocksOverSurvivors) {
  Csc a = matgen::grid2d_laplacian(9, 9);
  Prepared p = prepare(a, 16, 4);
  block::Mapping m = p.mapping;
  const nnz_t owned_by_1 =
      std::count(m.owner.begin(), m.owner.end(), rank_t(1));
  ASSERT_GT(owned_by_1, 0);
  EXPECT_EQ(m.remap_failed_rank(1), owned_by_1);
  EXPECT_EQ(std::count(m.owner.begin(), m.owner.end(), rank_t(1)), 0);
  // Cascading failure with an explicit alive mask: rank 2 also gone.
  std::vector<char> alive = {1, 0, 0, 1};
  ASSERT_GT(m.remap_failed_rank(2, alive), 0);
  EXPECT_EQ(std::count(m.owner.begin(), m.owner.end(), rank_t(2)), 0);
  // No survivors -> recovery impossible.
  block::Mapping solo;
  solo.n_ranks = 1;
  solo.owner = {0, 0};
  EXPECT_EQ(solo.remap_failed_rank(0), -1);
}

// (a)+(c): over several seeded recoverable plans, factors are bitwise equal
// to the fault-free run, and retransmit/recovery counters are nonzero
// exactly when faults fired.
TEST(FaultInjection, RecoverablePlansPreserveFactorsBitwise) {
  const rank_t ranks = 4;
  Csc a = matgen::circuit(220, 2.0, 2.2, 7);

  Prepared clean = prepare(a, 24, ranks);
  SimResult clean_res = run(clean, ranks, FaultPlan{});
  EXPECT_EQ(clean_res.retransmits, 0);
  EXPECT_EQ(clean_res.timeouts, 0);
  EXPECT_EQ(clean_res.duplicates_suppressed, 0);
  EXPECT_EQ(clean_res.rank_crashes, 0);
  EXPECT_EQ(clean_res.recovery_time, 0.0);

  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    FaultPlan plan = FaultPlan::random(seed, ranks, clean_res.makespan, 0.4);
    ASSERT_TRUE(plan.validate(ranks).is_ok());
    Prepared faulty = prepare(a, 24, ranks);
    SimResult res = run(faulty, ranks, plan);
    EXPECT_TRUE(bitwise_equal(clean.bm, faulty.bm))
        << "factors diverged under fault seed " << seed;
    EXPECT_GT(res.retransmits + res.duplicates_suppressed + res.rank_crashes,
              0)
        << "plan from seed " << seed << " fired no faults";
    EXPECT_GT(res.recovery_time, 0.0);
    // Fault handling can only cost virtual time, never save it.
    EXPECT_GE(res.makespan, clean_res.makespan);
  }
}

TEST(FaultInjection, LevelSetScheduleAlsoRecovers) {
  const rank_t ranks = 4;
  Csc a = matgen::grid2d_laplacian(10, 10);
  Prepared clean = prepare(a, 16, ranks);
  SimResult clean_res = run(clean, ranks, FaultPlan{}, ScheduleMode::kLevelSet);

  FaultPlan plan;
  plan.seed = 5;
  plan.drop_prob = 0.3;
  plan.dup_prob = 0.3;
  plan.slowdowns.push_back({1, 0.0, 2.0});
  plan.crashes.push_back({2, clean_res.makespan * 0.3});
  Prepared faulty = prepare(a, 16, ranks);
  SimResult res = run(faulty, ranks, plan, ScheduleMode::kLevelSet);
  EXPECT_TRUE(bitwise_equal(clean.bm, faulty.bm));
  EXPECT_GT(res.retransmits, 0);
  EXPECT_EQ(res.rank_crashes, 1);
  EXPECT_GT(res.remapped_blocks, 0);
  EXPECT_GT(res.makespan, clean_res.makespan);
}

// Acceptance: a crash at a chosen virtual time strictly lengthens the
// makespan (detection window + re-mapping + re-execution of stranded work).
TEST(FaultInjection, CrashStrictlyIncreasesMakespan) {
  const rank_t ranks = 4;
  Csc a = matgen::grid2d_laplacian(12, 12);
  Prepared clean = prepare(a, 16, ranks);
  SimResult clean_res = run(clean, ranks, FaultPlan{});

  FaultPlan plan;
  plan.crashes.push_back({1, clean_res.makespan * 0.3});
  Prepared faulty = prepare(a, 16, ranks);
  SimResult res = run(faulty, ranks, plan);
  EXPECT_TRUE(bitwise_equal(clean.bm, faulty.bm));
  EXPECT_EQ(res.rank_crashes, 1);
  EXPECT_TRUE(res.ranks[1].crashed);
  EXPECT_GT(res.recovered_tasks, 0);
  EXPECT_GT(res.remapped_blocks, 0);
  EXPECT_GT(res.makespan, clean_res.makespan);
  EXPECT_GT(res.recovery_time, 0.0);
}

TEST(FaultInjection, DeterministicAcrossRuns) {
  const rank_t ranks = 4;
  Csc a = matgen::grid2d_laplacian(10, 10);
  FaultPlan plan = FaultPlan::random(99, ranks, 1e-3, 0.5);
  SimResult r1, r2;
  for (auto* res : {&r1, &r2}) {
    Prepared p = prepare(a, 16, ranks);
    *res = run(p, ranks, plan);
  }
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.retransmits, r2.retransmits);
  EXPECT_EQ(r1.duplicates_suppressed, r2.duplicates_suppressed);
  EXPECT_EQ(r1.messages, r2.messages);
  EXPECT_DOUBLE_EQ(r1.recovery_time, r2.recovery_time);
}

// (d): unrecoverable plans return kUnavailable instead of crashing/hanging.
TEST(FaultInjection, UnrecoverablePlansReturnUnavailable) {
  const rank_t ranks = 2;
  Csc a = matgen::grid2d_laplacian(8, 8);

  // Every transfer attempt dropped and retries exhausted.
  FaultPlan hopeless;
  hopeless.drop_prob = 1.0;
  hopeless.max_attempts = 3;
  Prepared p1 = prepare(a, 16, ranks);
  SimOptions o1;
  o1.n_ranks = ranks;
  o1.faults = hopeless;
  SimResult res;
  Status s = simulate_factorization(p1.bm, p1.tasks, p1.mapping, o1, &res);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.message();

  // All ranks crash: rejected before the simulation even starts.
  FaultPlan total;
  total.crashes.push_back({0, 1e-5});
  total.crashes.push_back({1, 1e-5});
  Prepared p2 = prepare(a, 16, ranks);
  SimOptions o2;
  o2.n_ranks = ranks;
  o2.faults = total;
  s = simulate_factorization(p2.bm, p2.tasks, p2.mapping, o2, &res);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.message();
}

// (b): end-to-end through the Solver — the residual of a faulted solve is
// bit-identical to the fault-free one, and SolverOptions::fault_plan
// degrades gracefully when recovery is impossible.
TEST(FaultInjection, SolverResidualUnchangedUnderRecoverableFaults) {
  Csc a = matgen::circuit(200, 2.0, 2.2, 3);
  const index_t n = a.n_cols();
  std::vector<value_t> b(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    b[static_cast<std::size_t>(i)] = std::sin(static_cast<double>(i) + 1);

  solver::Options clean_opts;
  clean_opts.n_ranks = 4;
  solver::Solver clean;
  ASSERT_TRUE(clean.factorize(a, clean_opts).is_ok());
  std::vector<value_t> x_clean(static_cast<std::size_t>(n));
  solver::SolveStats st_clean;
  ASSERT_TRUE(clean.solve(b, x_clean, &st_clean).is_ok());

  solver::Options faulty_opts = clean_opts;
  faulty_opts.fault_plan =
      FaultPlan::random(17, 4, clean.stats().sim.makespan, 0.4);
  solver::Solver faulty;
  ASSERT_TRUE(faulty.factorize(a, faulty_opts).is_ok());
  std::vector<value_t> x_faulty(static_cast<std::size_t>(n));
  solver::SolveStats st_faulty;
  ASSERT_TRUE(faulty.solve(b, x_faulty, &st_faulty).is_ok());

  for (index_t i = 0; i < n; ++i)
    EXPECT_EQ(x_clean[static_cast<std::size_t>(i)],
              x_faulty[static_cast<std::size_t>(i)]);
  EXPECT_EQ(st_clean.final_residual, st_faulty.final_residual);
  EXPECT_LT(st_faulty.final_residual, 1e-10);
  EXPECT_GT(faulty.stats().sim.recovery_time, 0.0);

  // Unrecoverable plan through the public API: typed failure, no throw.
  solver::Options doomed = clean_opts;
  doomed.n_ranks = 1;
  doomed.fault_plan.crashes.push_back({0, 0.0});
  solver::Solver s;
  EXPECT_EQ(s.factorize(a, doomed).code(), StatusCode::kUnavailable);
}

TEST(FaultInjection, TraceTagsRecoveryEvents) {
  const rank_t ranks = 4;
  Csc a = matgen::grid2d_laplacian(10, 10);
  Prepared warm = prepare(a, 16, ranks);
  SimResult warm_res = run(warm, ranks, FaultPlan{}, ScheduleMode::kSyncFree,
                           /*execute=*/false);

  FaultPlan plan;
  plan.seed = 3;
  plan.drop_prob = 0.4;
  plan.stalls.push_back({0, warm_res.makespan * 0.2, warm_res.makespan * 0.1});
  plan.crashes.push_back({1, warm_res.makespan * 0.3});
  Prepared p = prepare(a, 16, ranks);
  TraceRecorder trace;
  SimOptions opts;
  opts.n_ranks = ranks;
  opts.execute_numerics = false;
  opts.faults = plan;
  opts.trace = &trace;
  SimResult res;
  ASSERT_TRUE(
      simulate_factorization(p.bm, p.tasks, p.mapping, opts, &res).is_ok());
  bool saw_crash = false, saw_recovery = false;
  for (const TraceInstant& in : trace.instants()) {
    if (in.name == "crash") saw_crash = true;
    if (in.name.rfind("recovery", 0) == 0) saw_recovery = true;
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_recovery);
  std::ostringstream os;
  trace.write_chrome_trace(os);
  EXPECT_NE(os.str().find("\"cat\": \"fault\""), std::string::npos);
}

}  // namespace
}  // namespace pangulu::runtime
