#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "block/mapping.hpp"
#include "matgen/generators.hpp"
#include "runtime/sim.hpp"
#include "symbolic/fill.hpp"

namespace pangulu::runtime {
namespace {

struct Prepared {
  block::BlockMatrix bm;
  std::vector<block::Task> tasks;
  block::Mapping mapping;
};

Prepared prepare(const Csc& a, index_t block_size, rank_t ranks) {
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(a, &sym).check();
  Prepared p;
  p.bm = block::BlockMatrix::from_filled(sym.filled, block_size);
  p.tasks = block::enumerate_tasks(p.bm);
  p.mapping = block::cyclic_mapping(p.bm, block::ProcessGrid::make(ranks));
  return p;
}

class TraceP : public ::testing::TestWithParam<ScheduleMode> {};

TEST_P(TraceP, SchedulerInvariantsHold) {
  Csc a = matgen::circuit(250, 2.0, 2.2, 3);
  Prepared p = prepare(a, 32, 4);
  TraceRecorder trace;
  SimOptions opts;
  opts.n_ranks = 4;
  opts.schedule = GetParam();
  opts.execute_numerics = false;
  opts.trace = &trace;
  SimResult res;
  ASSERT_TRUE(
      simulate_factorization(p.bm, p.tasks, p.mapping, opts, &res).is_ok());

  // Every task traced exactly once.
  ASSERT_EQ(trace.events().size(), p.tasks.size());
  std::vector<char> seen(p.tasks.size(), 0);
  for (const auto& ev : trace.events()) {
    ASSERT_GE(ev.task_index, 0);
    ASSERT_LT(static_cast<std::size_t>(ev.task_index), p.tasks.size());
    EXPECT_FALSE(seen[static_cast<std::size_t>(ev.task_index)]);
    seen[static_cast<std::size_t>(ev.task_index)] = 1;
    EXPECT_LE(ev.start, ev.end);
    EXPECT_LE(ev.end, res.makespan + 1e-12);
    EXPECT_EQ(ev.rank,
              p.mapping.owner[static_cast<std::size_t>(
                  p.tasks[static_cast<std::size_t>(ev.task_index)].target)]);
  }

  // No two tasks overlap on one rank.
  std::vector<std::vector<std::pair<double, double>>> per_rank(4);
  for (const auto& ev : trace.events())
    per_rank[static_cast<std::size_t>(ev.rank)].push_back({ev.start, ev.end});
  for (auto& iv : per_rank) {
    std::sort(iv.begin(), iv.end());
    for (std::size_t i = 1; i < iv.size(); ++i)
      EXPECT_GE(iv[i].first, iv[i - 1].second - 1e-12) << "overlap on a rank";
  }

  // Dependencies respected: a panel solve starts after its diagonal GETRF
  // ends; an SSSSM starts after both its source solves end.
  std::vector<double> end_of_finalizer(static_cast<std::size_t>(p.bm.n_blocks()),
                                       -1.0);
  for (const auto& ev : trace.events()) {
    const auto& task = p.tasks[static_cast<std::size_t>(ev.task_index)];
    if (task.kind != block::TaskKind::kSsssm)
      end_of_finalizer[static_cast<std::size_t>(task.target)] = ev.end;
  }
  for (const auto& ev : trace.events()) {
    const auto& task = p.tasks[static_cast<std::size_t>(ev.task_index)];
    if (task.kind == block::TaskKind::kGetrf) continue;
    EXPECT_GE(ev.start + 1e-12,
              end_of_finalizer[static_cast<std::size_t>(task.src_a)])
        << "task started before its source block was finalised";
    if (task.kind == block::TaskKind::kSsssm) {
      EXPECT_GE(ev.start + 1e-12,
                end_of_finalizer[static_cast<std::size_t>(task.src_b)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, TraceP,
                         ::testing::Values(ScheduleMode::kSyncFree,
                                           ScheduleMode::kLevelSet));

TEST(Trace, ChromeExportIsWellFormedJson) {
  Csc a = matgen::grid2d_laplacian(6, 6);
  Prepared p = prepare(a, 12, 2);
  TraceRecorder trace;
  SimOptions opts;
  opts.n_ranks = 2;
  opts.execute_numerics = false;
  opts.trace = &trace;
  SimResult res;
  ASSERT_TRUE(
      simulate_factorization(p.bm, p.tasks, p.mapping, opts, &res).is_ok());
  std::ostringstream os;
  trace.write_chrome_trace(os);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out[out.size() - 2], ']');
  // One event object per task; balanced braces.
  std::size_t opens = std::count(out.begin(), out.end(), '{');
  std::size_t closes = std::count(out.begin(), out.end(), '}');
  EXPECT_EQ(opens, p.tasks.size());
  EXPECT_EQ(opens, closes);
  EXPECT_NE(out.find("\"ph\": \"X\""), std::string::npos);
}

TEST(Trace, ClearResets) {
  TraceRecorder t;
  t.record({0, block::TaskKind::kGetrf, 0, 0, 0, 0, 0.0, 1.0});
  EXPECT_EQ(t.events().size(), 1u);
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

}  // namespace
}  // namespace pangulu::runtime
