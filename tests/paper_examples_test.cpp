// Tests that replay worked examples from the paper's figures:
//  * Figure 6(a)/(b): the two-layer sparse storage (block-CSC over blocks,
//    CSC within a block),
//  * Figure 9: the synchronisation-free array initialisation,
//  * Figure 2: the block LU dependency order (diagonal -> panels -> Schur).
#include <gtest/gtest.h>

#include "block/layout.hpp"
#include "block/tasks.hpp"
#include "matgen/generators.hpp"
#include "sparse/csc.hpp"
#include "symbolic/fill.hpp"

namespace pangulu::block {
namespace {

/// A fully dense matrix blocked into a g x g grid: every block exists, so
/// the sync-free array has the closed-form of Figure 9 — a diagonal block
/// (k,k) waits for k Schur updates; an off-diagonal block (i,j) waits for
/// min(i,j) updates plus its one panel solve.
TEST(Figure9, SyncFreeArrayClosedFormOnDenseGrid) {
  const index_t n = 8, bs = 2;  // 4x4 block grid, like the figure
  Csc a = matgen::random_sparse(n, n, 1, /*diag_dominant=*/true);
  // Densify: the figure's example has every block populated.
  Coo coo(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      coo.add(i, j, 1.0 + i + 10.0 * j + (i == j ? 100.0 : 0.0));
  Csc dense = Csc::from_coo(coo);

  BlockMatrix bm = BlockMatrix::from_filled(dense, bs);
  ASSERT_EQ(bm.nb(), 4);
  ASSERT_EQ(bm.n_blocks(), 16);
  auto tasks = enumerate_tasks(bm);
  auto arr = sync_free_array(bm, tasks);

  for (index_t bi = 0; bi < 4; ++bi) {
    for (index_t bj = 0; bj < 4; ++bj) {
      const nnz_t pos = bm.find_block(bi, bj);
      ASSERT_GE(pos, 0);
      const index_t expected =
          bi == bj ? bi : std::min(bi, bj) + 1;
      EXPECT_EQ(arr[static_cast<std::size_t>(pos)], expected)
          << "block (" << bi << "," << bj << ")";
    }
  }
  // The paper's example: block 1 (top-left) is immediately ready with value
  // 0; block 16 (bottom-right diagonal) waits for 3 updates.
  EXPECT_EQ(arr[static_cast<std::size_t>(bm.find_block(0, 0))], 0);
  EXPECT_EQ(arr[static_cast<std::size_t>(bm.find_block(3, 3))], 3);
}

/// Figure 6(a)/(b): two-layer storage on a hand-built pattern. The first
/// layer compresses non-empty blocks per block-column; the second layer is
/// a plain CSC of the block's local entries.
TEST(Figure6, TwoLayerStorageMatchesHandConstruction) {
  // 6x6 matrix, block size 3 -> 2x2 block grid. Only three blocks non-empty:
  // (0,0), (1,0), (1,1). Block (0,1) stays empty.
  Coo coo(6, 6);
  coo.add(0, 0, 1.0);
  coo.add(2, 1, 2.0);   // block (0,0)
  coo.add(4, 0, 3.0);   // block (1,0)
  coo.add(3, 2, 4.0);   // block (1,0)
  coo.add(3, 3, 5.0);
  coo.add(5, 4, 6.0);   // block (1,1)
  coo.add(4, 4, 6.5);
  coo.add(1, 1, 7.0);   // block (0,0)
  coo.add(5, 5, 8.0);   // needed: diagonal of block (1,1)
  Csc m = Csc::from_coo(coo);

  BlockMatrix bm = BlockMatrix::from_filled(m, 3);
  ASSERT_EQ(bm.nb(), 2);
  ASSERT_EQ(bm.n_blocks(), 3);

  // First layer (block-CSC): column 0 holds blocks rows {0,1}; column 1
  // holds block row {1} only.
  EXPECT_EQ(bm.col_begin(0), 0);
  EXPECT_EQ(bm.col_end(0), 2);
  EXPECT_EQ(bm.block_row(0), 0);
  EXPECT_EQ(bm.block_row(1), 1);
  EXPECT_EQ(bm.col_begin(1), 2);
  EXPECT_EQ(bm.col_end(1), 3);
  EXPECT_EQ(bm.block_row(2), 1);
  EXPECT_EQ(bm.find_block(0, 1), -1);  // the empty block is not stored

  // Second layer: block (1,0) holds global entries (4,0)->local (1,0) and
  // (3,2)->local (0,2).
  const Csc& blk10 = bm.block(bm.find_block(1, 0));
  EXPECT_EQ(blk10.nnz(), 2);
  EXPECT_DOUBLE_EQ(blk10.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(blk10.at(0, 2), 4.0);
  // Its CSC arrays, spelled out like Figure 6(b).
  const std::vector<nnz_t> expect_colptr = {0, 1, 1, 2};
  ASSERT_EQ(blk10.col_ptr().size(), expect_colptr.size());
  for (std::size_t i = 0; i < expect_colptr.size(); ++i)
    EXPECT_EQ(blk10.col_ptr()[i], expect_colptr[i]);
  EXPECT_EQ(blk10.row_idx()[0], 1);
  EXPECT_EQ(blk10.row_idx()[1], 0);
}

/// Figure 2: in every elimination step the task order is GETRF, then the
/// panel solves of that row/column, then the Schur updates — and a task's
/// sources always precede it in the enumeration.
TEST(Figure2, TaskEnumerationRespectsBlockLuOrder) {
  Csc a = matgen::grid2d_laplacian(9, 9);
  pangulu::symbolic::SymbolicResult sym;
  pangulu::symbolic::symbolic_symmetric(a, &sym).check();
  BlockMatrix bm = BlockMatrix::from_filled(sym.filled, 16);
  auto tasks = enumerate_tasks(bm);

  int last_phase = -1;
  index_t last_k = -1;
  std::vector<char> finalized(static_cast<std::size_t>(bm.n_blocks()), 0);
  for (const auto& t : tasks) {
    const int phase = t.kind == TaskKind::kGetrf   ? 0
                      : t.kind == TaskKind::kSsssm ? 2
                                                   : 1;
    if (t.k != last_k) {
      EXPECT_EQ(phase, 0) << "each step must open with GETRF";
      EXPECT_GT(t.k, last_k);
      last_k = t.k;
    } else {
      EXPECT_GE(phase, last_phase) << "phases must be ordered within a step";
    }
    last_phase = phase;
    if (t.kind == TaskKind::kSsssm) {
      EXPECT_TRUE(finalized[static_cast<std::size_t>(t.src_a)]);
      EXPECT_TRUE(finalized[static_cast<std::size_t>(t.src_b)]);
    } else {
      finalized[static_cast<std::size_t>(t.target)] = 1;
      if (t.kind != TaskKind::kGetrf) {
        EXPECT_TRUE(finalized[static_cast<std::size_t>(t.src_a)])
            << "panel solve needs its factorised diagonal";
      }
    }
  }
}

}  // namespace
}  // namespace pangulu::block
