// Cancellation sweep (DESIGN.md §15): arm a CancelToken's deterministic
// check-countdown at every safe point of seeded factorize / refactorize /
// solve runs — every canonical commit in the DES, every task boundary in
// the threaded executor, every sweep level of the plan-based solves — and
// prove the overload contract at each one: the failure is typed, nothing
// partial is published, and the solver stays usable afterwards. Labeled
// "faults" (with the cancel x solve stress) so it runs under the TSan build.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "matgen/generators.hpp"
#include "runtime/sim.hpp"
#include "runtime/threaded.hpp"
#include "solver/session.hpp"
#include "solver/solver.hpp"
#include "sparse/ops.hpp"
#include "symbolic/fill.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace pangulu::solver {
namespace {

// Generous ceiling on safe-point counts for the sweep loops: if a seeded
// run still has not completed with this many free checks, polls leak.
constexpr long long kMaxSafePoints = 200000;

bool is_cancel_code(const Status& s) {
  return s.code() == StatusCode::kCancelled ||
         s.code() == StatusCode::kDeadlineExceeded;
}

std::vector<value_t> make_rhs(const Csc& a) {
  std::vector<value_t> ones(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  a.spmv(ones, b);
  return b;
}

std::vector<value_t> factor_bits(const Solver& s) {
  std::vector<value_t> v;
  const auto& f = s.factors();
  for (nnz_t pos = 0; pos < static_cast<nnz_t>(f.n_blocks()); ++pos) {
    auto vals = f.block(pos).values();
    v.insert(v.end(), vals.begin(), vals.end());
  }
  return v;
}

std::vector<value_t> block_bits(const block::BlockMatrix& f) {
  std::vector<value_t> v;
  for (nnz_t pos = 0; pos < static_cast<nnz_t>(f.n_blocks()); ++pos) {
    auto vals = f.block(pos).values();
    v.insert(v.end(), vals.begin(), vals.end());
  }
  return v;
}

Csc perturb_values(const Csc& a, unsigned seed) {
  Csc p = a;
  Rng rng(seed);
  for (value_t& v : p.values_mut())
    v *= static_cast<value_t>(rng.uniform(0.9, 1.1));
  return p;
}

Options cancel_sweep_options() {
  Options opts;
  opts.n_ranks = 4;
  // Value-blind pipeline so bitwise witnesses survive value perturbation
  // (same reasoning as the session refactorize tests).
  opts.reorder.use_mc64 = false;
  opts.reorder.apply_scaling = false;
  return opts;
}

TEST(CancelToken, ChecksBothClocksAndTheManualSwitch) {
  CancelToken idle;
  EXPECT_TRUE(idle.check("anywhere").is_ok());
  EXPECT_TRUE(idle.check_virtual(1e300, "anywhere").is_ok());
  EXPECT_EQ(idle.wall_seconds_remaining(),
            std::numeric_limits<double>::infinity());
  EXPECT_FALSE(idle.has_wall_deadline());

  CancelToken manual;
  manual.cancel();
  EXPECT_EQ(manual.check("safe point").code(), StatusCode::kCancelled);

  CancelToken wall;
  wall.set_wall_deadline_after(-1.0);  // already expired
  EXPECT_TRUE(wall.has_wall_deadline());
  EXPECT_EQ(wall.wall_seconds_remaining(), 0.0);
  EXPECT_EQ(wall.check("safe point").code(), StatusCode::kDeadlineExceeded);

  CancelToken vdl;
  vdl.set_virtual_deadline(2.0);
  EXPECT_TRUE(vdl.check("wall check ignores virtual").is_ok());
  EXPECT_TRUE(vdl.check_virtual(2.0, "at the deadline").is_ok());
  EXPECT_EQ(vdl.check_virtual(2.5, "past it").code(),
            StatusCode::kDeadlineExceeded);

  CancelToken counted;
  counted.cancel_after_checks(2);
  EXPECT_TRUE(counted.check("1").is_ok());
  EXPECT_TRUE(counted.check("2").is_ok());
  EXPECT_EQ(counted.check("3").code(), StatusCode::kCancelled);
  EXPECT_EQ(counted.check("4").code(), StatusCode::kCancelled) << "saturates";
}

// Factorisation on the DES executor: fire the token at every commit safe
// point. A cancelled run must never publish a factorisation (solve keeps
// failing kFailedPrecondition) and a later un-cancelled factorize on the
// same Solver must succeed bit-identically to an undisturbed one.
TEST(CancelSweep, FactorizeEveryCommitSafePoint) {
  const Csc a = matgen::grid2d_laplacian(8, 8);
  const Options opts = cancel_sweep_options();
  Solver undisturbed;
  ASSERT_TRUE(undisturbed.factorize(a, opts).is_ok());
  const std::vector<value_t> want = factor_bits(undisturbed);
  const auto b = make_rhs(a);

  long long cancelled_runs = 0;
  for (long long n = 0; n <= kMaxSafePoints; ++n) {
    CancelToken tok;
    tok.cancel_after_checks(n);
    Options copts = opts;
    copts.cancel = &tok;
    Solver s;
    const Status st = s.factorize(a, copts);
    if (st.is_ok()) {
      EXPECT_EQ(factor_bits(s), want) << "free checks must not perturb";
      EXPECT_GT(cancelled_runs, 0) << "the sweep never fired";
      return;
    }
    SCOPED_TRACE("cancelled after " + std::to_string(n) + " checks");
    ASSERT_TRUE(is_cancel_code(st)) << st.message();
    ++cancelled_runs;
    std::vector<value_t> x(b.size(), 0.0);
    EXPECT_EQ(s.solve(b, x).code(), StatusCode::kFailedPrecondition)
        << "cancelled factorize must not publish a factorisation";
    // The solver object survives: disarm and factorize for real.
    tok.cancel_after_checks(-1);
    ASSERT_TRUE(s.factorize(a, copts).is_ok());
    EXPECT_EQ(factor_bits(s), want);
  }
  FAIL() << "factorize never completed within " << kMaxSafePoints
         << " free checks";
}

// Same sweep on the threaded executor: rank-threads poll at task
// boundaries; a cancelled crew quiesces with a typed error, and a fresh
// run commits the same canonical factors as the DES bit for bit.
TEST(CancelSweep, ThreadedFactorizeEveryTaskBoundary) {
  const Csc a = matgen::grid2d_laplacian(8, 8);
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(a, &sym).check();
  const block::BlockMatrix pre = block::BlockMatrix::from_filled(sym.filled, 8);
  const auto tasks = block::enumerate_tasks(pre);
  const block::Mapping map =
      block::cyclic_mapping(pre, block::ProcessGrid::make(4));

  block::BlockMatrix want = pre;
  runtime::SimOptions des;
  des.n_ranks = 4;
  runtime::SimResult res;
  runtime::simulate_factorization(want, tasks, map, des, &res).check();

  runtime::ThreadedOptions topts;
  topts.n_ranks = 4;
  long long cancelled_runs = 0;
  for (long long n = 0; n <= kMaxSafePoints; ++n) {
    CancelToken tok;
    tok.cancel_after_checks(n);
    topts.cancel = &tok;
    block::BlockMatrix bm = pre;
    const Status st = runtime::threaded_factorize(bm, tasks, map, topts);
    if (st.is_ok()) {
      EXPECT_EQ(block_bits(bm), block_bits(want))
          << "threaded factors must stay bitwise identical to the DES";
      EXPECT_GT(cancelled_runs, 0) << "the sweep never fired";
      return;
    }
    SCOPED_TRACE("cancelled after " + std::to_string(n) + " checks");
    ASSERT_TRUE(is_cancel_code(st)) << st.message();
    ++cancelled_runs;
  }
  FAIL() << "threaded factorize never completed within " << kMaxSafePoints
         << " free checks";
}

// Solve sweep: fire at every sweep level. Without refinement the output
// vector is bitwise untouched on every cancellation point, and the
// eventual un-cancelled solve is bitwise the undisturbed answer.
TEST(CancelSweep, SolveEverySweepLevelLeavesOutputUntouched) {
  const Csc a = matgen::grid2d_laplacian(12, 12);
  Options opts = cancel_sweep_options();
  opts.refine_iters = 0;
  Solver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  const auto b = make_rhs(a);
  std::vector<value_t> want(b.size(), 0.0);
  ASSERT_TRUE(s.solve(b, want).is_ok());

  const value_t sentinel = static_cast<value_t>(-12345.5);
  long long cancelled_runs = 0;
  for (long long n = 0; n <= kMaxSafePoints; ++n) {
    CancelToken tok;
    tok.cancel_after_checks(n);
    std::vector<value_t> x(b.size(), sentinel);
    const Status st = s.solve(b, x, nullptr, &tok);
    if (st.is_ok()) {
      EXPECT_EQ(x, want);
      EXPECT_GT(cancelled_runs, 0) << "the sweep never fired";
      return;
    }
    SCOPED_TRACE("cancelled after " + std::to_string(n) + " checks");
    ASSERT_TRUE(is_cancel_code(st)) << st.message();
    ++cancelled_runs;
    for (value_t v : x) ASSERT_EQ(v, sentinel) << "partial sweep published";
    // The factorisation is untouched by a shed solve.
    std::vector<value_t> x2(b.size(), 0.0);
    ASSERT_TRUE(s.solve(b, x2).is_ok());
    ASSERT_EQ(x2, want);
  }
  FAIL() << "solve never completed within " << kMaxSafePoints
         << " free checks";
}

// With refinement on, a cancelled solve may also surface the last fully
// refined iterate — a complete solution, never a half-swept vector.
TEST(CancelSweep, SolveMidRefinementPublishesOnlyCompleteIterates) {
  const Csc a = matgen::circuit(200, 2.0, 2.2, 7);
  Options opts = cancel_sweep_options();
  opts.refine_iters = 3;
  Solver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  const auto b = make_rhs(a);

  const value_t sentinel = static_cast<value_t>(-12345.5);
  for (long long n = 0; n <= kMaxSafePoints; ++n) {
    CancelToken tok;
    tok.cancel_after_checks(n);
    std::vector<value_t> x(b.size(), sentinel);
    const Status st = s.solve(b, x, nullptr, &tok);
    if (st.is_ok()) return;
    SCOPED_TRACE("cancelled after " + std::to_string(n) + " checks");
    ASSERT_TRUE(is_cancel_code(st)) << st.message();
    const bool untouched =
        std::all_of(x.begin(), x.end(),
                    [&](value_t v) { return v == sentinel; });
    if (!untouched) {
      // A published iterate went through at least the full direct pass:
      // it must actually solve the system.
      ASSERT_LT(relative_residual(a, x, b), 1e-8)
          << "cancelled solve published an incomplete vector";
    }
  }
  FAIL() << "solve never completed within " << kMaxSafePoints
         << " free checks";
}

// Refactorize sweep: a cancelled numeric-only refactorisation rolls back to
// the previous factors (bitwise) and the solver keeps solving the OLD
// system; an eventual clean refactorize then matches a fresh factorisation
// of the new values.
TEST(CancelSweep, RefactorizeEveryCommitRollsBackToOldFactors) {
  const Csc a = matgen::grid2d_laplacian(8, 8);
  const Csc a2 = perturb_values(a, 99);
  const Options opts = cancel_sweep_options();

  Solver fresh2;
  ASSERT_TRUE(fresh2.factorize(a2, opts).is_ok());
  const std::vector<value_t> want_new = factor_bits(fresh2);

  CancelToken tok;
  Options copts = opts;
  copts.cancel = &tok;
  Solver s;
  ASSERT_TRUE(s.factorize(a, copts).is_ok());
  const std::vector<value_t> want_old = factor_bits(s);
  const auto b = make_rhs(a);
  std::vector<value_t> x_old(b.size(), 0.0);
  ASSERT_TRUE(s.solve(b, x_old).is_ok());

  long long cancelled_runs = 0;
  for (long long n = 0; n <= kMaxSafePoints; ++n) {
    tok.cancel_after_checks(n);
    const Status st = s.refactorize(a2);
    if (st.is_ok()) {
      EXPECT_EQ(factor_bits(s), want_new);
      EXPECT_GT(cancelled_runs, 0) << "the sweep never fired";
      return;
    }
    SCOPED_TRACE("cancelled after " + std::to_string(n) + " checks");
    ASSERT_TRUE(is_cancel_code(st)) << st.message();
    ++cancelled_runs;
    tok.cancel_after_checks(-1);  // disarm for the witness solves
    ASSERT_EQ(factor_bits(s), want_old)
        << "cancelled refactorize must restore the previous factors";
    std::vector<value_t> x(b.size(), 0.0);
    ASSERT_TRUE(s.solve(b, x).is_ok());
    ASSERT_EQ(x, x_old) << "the session must keep solving the old system";
  }
  FAIL() << "refactorize never completed within " << kMaxSafePoints
         << " free checks";
}

// Virtual-clock deadline: a simulated factorisation that cannot finish
// within its virtual budget sheds typed, publishes nothing, and a token
// with the budget at exactly the makespan still completes.
TEST(CancelVirtualDeadline, ShedsSimulatedFactorization) {
  const Csc a = matgen::grid2d_laplacian(10, 10);
  const Options opts = cancel_sweep_options();
  Solver timed;
  ASSERT_TRUE(timed.factorize(a, opts).is_ok());
  const double makespan = timed.stats().sim.makespan;
  ASSERT_GT(makespan, 0);

  CancelToken tok;
  tok.set_virtual_deadline(makespan / 2);
  Options copts = opts;
  copts.cancel = &tok;
  Solver s;
  const Status st = s.factorize(a, copts);
  ASSERT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.message();
  const auto b = make_rhs(a);
  std::vector<value_t> x(b.size(), 0.0);
  EXPECT_EQ(s.solve(b, x).code(), StatusCode::kFailedPrecondition);

  CancelToken roomy;
  roomy.set_virtual_deadline(makespan);
  copts.cancel = &roomy;
  EXPECT_TRUE(s.factorize(a, copts).is_ok())
      << "a run finishing exactly at the deadline must succeed";
  EXPECT_EQ(factor_bits(s), factor_bits(timed));
}

// TSan stress: many threads solving through one shared token while another
// thread flips it, interleaved with session-level deadline solves and
// refactorisations. Exercises the atomic token contract and the
// shed-keeps-session-ready contract under true concurrency.
TEST(CancelStress, ConcurrentCancelAndSolve) {
  const Csc a = matgen::grid2d_laplacian(12, 12);
  Options opts = cancel_sweep_options();
  opts.refine_iters = 1;
  Session session;
  ASSERT_TRUE(session.setup(a, opts).is_ok());
  const auto b = make_rhs(a);

  CancelToken shared;
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      std::vector<value_t> x(b.size(), 0.0);
      while (!stop.load(std::memory_order_acquire)) {
        const Status st =
            session.solver().solve(b, x, nullptr, &shared);
        if (!st.is_ok() && st.code() != StatusCode::kCancelled)
          bad.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&] {
    std::vector<value_t> x(b.size(), 0.0);
    for (int i = 0; i < 40; ++i) {
      const double dl = (i % 2) ? 1e-7 : 10.0;
      const Status st = session.solve_deadline(b, x, dl);
      if (!st.is_ok() && st.code() != StatusCode::kDeadlineExceeded)
        bad.fetch_add(1);
    }
  });
  for (int i = 0; i < 60; ++i) {
    if (i % 2) {
      shared.cancel_after_checks(i % 7);
    } else {
      shared.cancel_after_checks(-1);
    }
    std::this_thread::yield();
  }
  shared.cancel_after_checks(-1);
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);

  // The session came through every shed intact.
  std::vector<value_t> x(b.size(), 0.0);
  ASSERT_TRUE(session.solve(b, x).is_ok());
  EXPECT_LT(relative_residual(a, x, b), 1e-9);
}

}  // namespace
}  // namespace pangulu::solver
