#include <gtest/gtest.h>

#include "matgen/generators.hpp"
#include "solver/solver.hpp"
#include "sparse/ops.hpp"

namespace pangulu::solver {
namespace {

std::vector<value_t> make_rhs(const Csc& a) {
  // b = A * ones so the exact solution is known to be all-ones.
  std::vector<value_t> ones(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  a.spmv(ones, b);
  return b;
}

void check_solve(const Csc& a, const Options& opts, value_t tol = 1e-9) {
  Solver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  auto b = make_rhs(a);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()), 0.0);
  ASSERT_TRUE(s.solve(b, x).is_ok());
  EXPECT_LT(relative_residual(a, x, b), tol);
  for (value_t xi : x) EXPECT_NEAR(xi, 1.0, 1e-5);
}

TEST(Solver, SolvesGridLaplacian) {
  check_solve(matgen::grid2d_laplacian(20, 20), Options{});
}

TEST(Solver, SolvesCircuitMatrix) {
  check_solve(matgen::circuit(300, 2.0, 2.2, 17), Options{});
}

TEST(Solver, SolvesUnsymmetricCage) {
  check_solve(matgen::cage_style(200, 3, 9), Options{});
}

TEST(Solver, SolvesKkt) { check_solve(matgen::kkt(5, 5, 5, 2), Options{}); }

TEST(Solver, SolvesFem) { check_solve(matgen::fem3d(4, 4, 4, 2, 3), Options{}); }

class SolverRanksP : public ::testing::TestWithParam<rank_t> {};

TEST_P(SolverRanksP, MultiRankMatchesResidualBound) {
  Options opts;
  opts.n_ranks = GetParam();
  check_solve(matgen::grid2d_laplacian(16, 16), opts);
}

INSTANTIATE_TEST_SUITE_P(Ranks, SolverRanksP,
                         ::testing::Values<rank_t>(1, 2, 4, 8, 16));

TEST(Solver, AllOrderingChoicesWork) {
  Csc a = matgen::grid2d_laplacian(12, 12);
  for (auto fr : {ordering::FillReducing::kNestedDissection,
                  ordering::FillReducing::kMinDegree,
                  ordering::FillReducing::kAmd,
                  ordering::FillReducing::kRcm,
                  ordering::FillReducing::kNatural}) {
    Options opts;
    opts.reorder.fill_reducing = fr;
    check_solve(a, opts);
  }
}

TEST(Solver, WorksWithoutMc64OnDominantMatrix) {
  Options opts;
  opts.reorder.use_mc64 = false;
  check_solve(matgen::grid2d_laplacian(14, 14), opts);
}

TEST(Solver, LevelSetScheduleGivesSameAnswer) {
  Options opts;
  opts.schedule = runtime::ScheduleMode::kLevelSet;
  opts.n_ranks = 4;
  check_solve(matgen::circuit(200, 2.0, 2.2, 31), opts);
}

TEST(Solver, FixedKernelPoliciesWork) {
  for (auto policy :
       {runtime::KernelPolicy::kFixedCpu, runtime::KernelPolicy::kFixedGpu}) {
    Options opts;
    opts.policy = policy;
    check_solve(matgen::grid2d_laplacian(10, 10), opts);
  }
}

TEST(Solver, ExplicitBlockSizeRespected) {
  Options opts;
  opts.block_size = 20;
  Solver s;
  Csc a = matgen::grid2d_laplacian(15, 15);
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  EXPECT_EQ(s.stats().block_size, 20);
  EXPECT_EQ(s.stats().nb, (225 + 19) / 20);
}

TEST(Solver, StatsArePopulated) {
  Solver s;
  Csc a = matgen::grid2d_laplacian(16, 16);
  Options opts;
  opts.n_ranks = 4;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  const auto& st = s.stats();
  EXPECT_EQ(st.n, 256);
  EXPECT_EQ(st.nnz_a, a.nnz());
  EXPECT_GT(st.nnz_lu, a.nnz());
  EXPECT_GT(st.flops, 0);
  EXPECT_GT(st.n_tasks, 0u);
  EXPECT_GT(st.sim.makespan, 0);
  // Block-wise task weights approximate the scalar FLOP count (panel-solve
  // weights are estimates); they must stay within a factor of ~2.
  EXPECT_GT(st.sim.total_flops, 0.5 * st.flops);
  EXPECT_LT(st.sim.total_flops, 2.0 * st.flops);
}

TEST(Solver, SolveBeforeFactorizeFails) {
  Solver s;
  std::vector<value_t> b(4, 1.0), x(4);
  EXPECT_FALSE(s.solve(b, x).is_ok());
}

TEST(Solver, RejectsRectangular) {
  Solver s;
  EXPECT_FALSE(s.factorize(matgen::random_rect(4, 5, 0.5, 1), {}).is_ok());
}

TEST(Solver, RejectsWrongRhsSize) {
  Solver s;
  Csc a = matgen::grid2d_laplacian(4, 4);
  ASSERT_TRUE(s.factorize(a, {}).is_ok());
  std::vector<value_t> b(15, 1.0), x(16);
  EXPECT_FALSE(s.solve(b, x).is_ok());
}

TEST(Solver, RepeatedSolvesReuseFactors) {
  Solver s;
  Csc a = matgen::circuit(120, 2.0, 2.2, 3);
  ASSERT_TRUE(s.factorize(a, {}).is_ok());
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<value_t> xref(static_cast<std::size_t>(a.n_cols()));
    for (index_t i = 0; i < a.n_cols(); ++i)
      xref[static_cast<std::size_t>(i)] = 0.5 + 0.01 * i * (trial + 1);
    std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
    a.spmv(xref, b);
    std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
    ASSERT_TRUE(s.solve(b, x).is_ok());
    EXPECT_LT(relative_residual(a, x, b), 1e-9);
  }
}

TEST(Solver, PaperMatricesSmallScaleAllSolve) {
  // Every generator class goes through the full pipeline at test scale.
  for (const auto& name : matgen::paper_matrix_names()) {
    SCOPED_TRACE(name);
    Csc a = matgen::paper_matrix(name, 0.22);
    Options opts;
    opts.n_ranks = 4;
    Solver s;
    ASSERT_TRUE(s.factorize(a, opts).is_ok()) << name;
    auto b = make_rhs(a);
    std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
    ASSERT_TRUE(s.solve(b, x).is_ok()) << name;
    EXPECT_LT(relative_residual(a, x, b), 1e-8) << name;
  }
}

}  // namespace
}  // namespace pangulu::solver
