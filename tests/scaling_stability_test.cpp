// Numerical-stability tests of the reordering phase: MC64's max-product
// matching + scaling is the paper's stability mechanism (no pivoting in the
// numeric phase), so badly scaled / off-diagonal-dominant systems must
// survive through it.
#include <gtest/gtest.h>

#include <cmath>

#include "matgen/generators.hpp"
#include "solver/solver.hpp"
#include "sparse/ops.hpp"
#include "util/rng.hpp"

namespace pangulu::solver {
namespace {

/// Matrix whose rows/columns span ~16 orders of magnitude.
Csc badly_scaled(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Csc base = matgen::random_sparse(n, 3, seed);
  std::vector<value_t> rs(static_cast<std::size_t>(n));
  std::vector<value_t> cs(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    rs[static_cast<std::size_t>(i)] = std::pow(10.0, rng.uniform(-8.0, 8.0));
    cs[static_cast<std::size_t>(i)] = std::pow(10.0, rng.uniform(-8.0, 8.0));
  }
  base.scale(rs, cs);
  return base;
}

class BadScalingP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BadScalingP, Mc64ScalingRecoversAccuracy) {
  Csc a = badly_scaled(80, GetParam());
  Solver s;
  Options opts;  // MC64 + scaling on by default
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  std::vector<value_t> ones(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  a.spmv(ones, b);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
  SolveStats st;
  ASSERT_TRUE(s.solve(b, x, &st).is_ok());
  EXPECT_LT(st.final_residual, 1e-10)
      << "MC64 scaling + refinement must deliver a small backward error even "
         "on a matrix spanning 16 orders of magnitude";
}

INSTANTIATE_TEST_SUITE_P(Seeds, BadScalingP, ::testing::Values(1, 2, 3, 4, 5));

TEST(BadScaling, OffDiagonalDominantNeedsMc64Permutation) {
  // Construct a system whose large entries sit OFF the diagonal: without the
  // MC64 permutation the static-pivot factorisation degrades badly.
  const index_t n = 60;
  Coo coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 1e-10);                  // tiny diagonal
    coo.add(i, (i + 1) % n, 3.0);          // big off-diagonal cycle
    coo.add(i, (i + 7) % n, 0.5);
  }
  Csc a = Csc::from_coo(coo);
  std::vector<value_t> ones(static_cast<std::size_t>(n), 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(n));
  a.spmv(ones, b);
  std::vector<value_t> x(static_cast<std::size_t>(n));

  Solver with_mc64;
  ASSERT_TRUE(with_mc64.factorize(a, {}).is_ok());
  ASSERT_TRUE(with_mc64.solve(b, x).is_ok());
  EXPECT_LT(relative_residual(a, x, b), 1e-10);
  // MC64 should not have needed any pivot perturbation: the permutation put
  // the 3.0 entries on the diagonal.
  EXPECT_EQ(with_mc64.stats().sim.perturbed_pivots, 0);
}

TEST(BadScaling, RefinementReportsIterationsOnHardSystems) {
  Csc a = badly_scaled(60, 17);
  Solver s;
  Options opts;
  opts.refine_iters = 3;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()), 1.0);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
  SolveStats st;
  ASSERT_TRUE(s.solve(b, x, &st).is_ok());
  EXPECT_LE(st.refine_iterations, 3);
  EXPECT_LT(st.final_residual, 1e-9);
}

}  // namespace
}  // namespace pangulu::solver
