#include <gtest/gtest.h>

#include "matgen/generators.hpp"
#include "sparse/csc.hpp"
#include "sparse/dense.hpp"
#include "sparse/ops.hpp"

namespace pangulu {
namespace {

TEST(Coo, SortAndCombineSumsDuplicates) {
  Coo coo(3, 3);
  coo.add(1, 1, 2.0);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 3.0);
  coo.sort_and_combine();
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_EQ(coo.entries[0].row, 0);
  EXPECT_DOUBLE_EQ(coo.entries[1].value, 5.0);
}

TEST(Csc, FromCooRoundTrip) {
  Coo coo(4, 3);
  coo.add(2, 0, 1.5);
  coo.add(0, 1, -2.0);
  coo.add(3, 1, 4.0);
  coo.add(1, 2, 0.5);
  Csc m = Csc::from_coo(coo);
  EXPECT_TRUE(m.validate().is_ok());
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 1.5);
  EXPECT_DOUBLE_EQ(m.at(3, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);  // absent entry reads as zero
  EXPECT_EQ(m.find(0, 0), -1);
}

TEST(Csc, TransposeIsInvolution) {
  Csc m = matgen::random_sparse(40, 5, 7);
  Csc tt = m.transpose().transpose();
  EXPECT_TRUE(m.approx_equal(tt, 0.0));
}

TEST(Csc, TransposeSwapsEntries) {
  Csc m = matgen::random_rect(6, 9, 0.3, 11);
  Csc t = m.transpose();
  EXPECT_EQ(t.n_rows(), 9);
  EXPECT_EQ(t.n_cols(), 6);
  for (index_t j = 0; j < m.n_cols(); ++j) {
    for (nnz_t p = m.col_begin(j); p < m.col_end(j); ++p) {
      index_t r = m.row_idx()[static_cast<std::size_t>(p)];
      EXPECT_DOUBLE_EQ(t.at(j, r), m.values()[static_cast<std::size_t>(p)]);
    }
  }
}

TEST(Csc, PermutedMovesEntries) {
  Csc m = matgen::random_sparse(10, 3, 3);
  std::vector<index_t> rp = {3, 1, 4, 0, 2, 9, 8, 7, 6, 5};
  std::vector<index_t> cp = {1, 0, 3, 2, 5, 4, 7, 6, 9, 8};
  Csc pm = m.permuted(rp, cp);
  for (index_t j = 0; j < 10; ++j) {
    for (nnz_t p = m.col_begin(j); p < m.col_end(j); ++p) {
      index_t r = m.row_idx()[static_cast<std::size_t>(p)];
      EXPECT_DOUBLE_EQ(pm.at(rp[static_cast<std::size_t>(r)],
                             cp[static_cast<std::size_t>(j)]),
                       m.values()[static_cast<std::size_t>(p)]);
    }
  }
}

TEST(Csc, ScaleMultipliesRowsAndCols) {
  Csc m = matgen::random_sparse(8, 2, 5);
  Csc orig = m;
  std::vector<value_t> rs(8), cs(8);
  for (int i = 0; i < 8; ++i) {
    rs[static_cast<std::size_t>(i)] = 1.0 + i;
    cs[static_cast<std::size_t>(i)] = 2.0 / (1.0 + i);
  }
  m.scale(rs, cs);
  for (index_t j = 0; j < 8; ++j) {
    for (nnz_t p = orig.col_begin(j); p < orig.col_end(j); ++p) {
      index_t r = orig.row_idx()[static_cast<std::size_t>(p)];
      EXPECT_NEAR(m.at(r, j),
                  orig.values()[static_cast<std::size_t>(p)] *
                      rs[static_cast<std::size_t>(r)] *
                      cs[static_cast<std::size_t>(j)],
                  1e-14);
    }
  }
}

TEST(Csc, SymmetrizedHasSymmetricPattern) {
  Csc m = matgen::circuit(60, 2.0, 2.2, 42);
  Csc s = m.symmetrized();
  for (index_t j = 0; j < s.n_cols(); ++j) {
    for (nnz_t p = s.col_begin(j); p < s.col_end(j); ++p) {
      index_t r = s.row_idx()[static_cast<std::size_t>(p)];
      EXPECT_GE(s.find(j, r), 0) << "missing mirror of (" << r << "," << j << ")";
    }
  }
  // Values of the original survive.
  for (index_t j = 0; j < m.n_cols(); ++j) {
    for (nnz_t p = m.col_begin(j); p < m.col_end(j); ++p) {
      index_t r = m.row_idx()[static_cast<std::size_t>(p)];
      if (m.find(j, r) < 0) {  // strictly one-sided entry: value preserved
        EXPECT_DOUBLE_EQ(s.at(r, j), m.values()[static_cast<std::size_t>(p)]);
      }
    }
  }
}

TEST(Csc, WithFullDiagonalAddsZeros) {
  Coo coo(3, 3);
  coo.add(1, 0, 2.0);
  coo.add(1, 1, 5.0);
  Csc m = Csc::from_coo(coo).with_full_diagonal();
  EXPECT_GE(m.find(0, 0), 0);
  EXPECT_GE(m.find(2, 2), 0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
}

TEST(Csc, SubMatrixExtractsWindow) {
  Csc m = matgen::random_sparse(20, 4, 9);
  Csc s = m.sub_matrix(5, 12, 3, 17);
  EXPECT_EQ(s.n_rows(), 7);
  EXPECT_EQ(s.n_cols(), 14);
  for (index_t j = 0; j < s.n_cols(); ++j) {
    for (nnz_t p = s.col_begin(j); p < s.col_end(j); ++p) {
      index_t r = s.row_idx()[static_cast<std::size_t>(p)];
      EXPECT_DOUBLE_EQ(s.values()[static_cast<std::size_t>(p)],
                       m.at(r + 5, j + 3));
    }
  }
}

TEST(Csc, SpmvMatchesDense) {
  Csc m = matgen::random_sparse(30, 4, 21);
  Dense d = Dense::from_csc(m);
  std::vector<value_t> x(30), y(30), yd(30, 0.0);
  for (int i = 0; i < 30; ++i) x[static_cast<std::size_t>(i)] = 0.1 * i - 1.0;
  m.spmv(x, y);
  for (index_t i = 0; i < 30; ++i)
    for (index_t j = 0; j < 30; ++j)
      yd[static_cast<std::size_t>(i)] += d(i, j) * x[static_cast<std::size_t>(j)];
  for (int i = 0; i < 30; ++i)
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], yd[static_cast<std::size_t>(i)], 1e-12);
}

TEST(Csc, ValidateCatchesBadInputs) {
  // Unsorted rows within a column.
  EXPECT_THROW(Csc::from_parts(2, 1, {0, 2}, {1, 0}, {1.0, 2.0}),
               std::runtime_error);
  // Out-of-range row.
  EXPECT_THROW(Csc::from_parts(2, 1, {0, 1}, {5}, {1.0}), std::runtime_error);
  // Non-monotone pointers.
  EXPECT_THROW(Csc::from_parts(2, 2, {0, 1, 0}, {0}, {1.0}),
               std::runtime_error);
}

TEST(Csc, TriangularPredicates) {
  Csc l = matgen::random_unit_lower(12, 0.4, 3);
  Csc u = matgen::random_upper(12, 0.4, 4);
  EXPECT_TRUE(l.is_lower_triangular());
  EXPECT_FALSE(l.is_upper_triangular());
  EXPECT_TRUE(u.is_upper_triangular());
}

TEST(Ops, TriangularSolvesInvertEachOther) {
  const index_t n = 50;
  Csc l = matgen::random_unit_lower(n, 0.2, 17);
  Csc u = matgen::random_upper(n, 0.2, 18);
  std::vector<value_t> x(static_cast<std::size_t>(n), 1.0), b(static_cast<std::size_t>(n));
  // b = L * x, solve should return x.
  l.spmv(x, b);
  lower_solve(l, b, /*unit_diag=*/true);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(b[static_cast<std::size_t>(i)], 1.0, 1e-10);
  u.spmv(x, b);
  upper_solve(u, b);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(b[static_cast<std::size_t>(i)], 1.0, 1e-9);
}

TEST(Ops, PermutationHelpers) {
  std::vector<index_t> p = {2, 0, 3, 1};
  EXPECT_TRUE(is_permutation(p));
  auto inv = invert_permutation(p);
  auto id = compose(p, inv);
  for (index_t i = 0; i < 4; ++i) EXPECT_EQ(id[static_cast<std::size_t>(i)], i);
  std::vector<index_t> bad = {0, 0, 1, 2};
  EXPECT_FALSE(is_permutation(bad));
  std::vector<index_t> oob = {0, 4, 1, 2};
  EXPECT_FALSE(is_permutation(oob));
}

TEST(Ops, RelativeResidualZeroForExactSolution) {
  Csc m = matgen::random_sparse(25, 3, 5);
  std::vector<value_t> x(25, 2.0), b(25);
  m.spmv(x, b);
  EXPECT_LT(relative_residual(m, x, b), 1e-15);
}

TEST(Dense, GemmSubMatchesManual) {
  Csc a = matgen::random_rect(5, 4, 0.6, 1);
  Csc b = matgen::random_rect(4, 6, 0.6, 2);
  Dense da = Dense::from_csc(a), db = Dense::from_csc(b);
  Dense c(5, 6);
  Dense::gemm_sub(da, db, c);
  for (index_t i = 0; i < 5; ++i) {
    for (index_t j = 0; j < 6; ++j) {
      value_t acc = 0;
      for (index_t k = 0; k < 4; ++k) acc -= da(i, k) * db(k, j);
      EXPECT_NEAR(c(i, j), acc, 1e-13);
    }
  }
}

}  // namespace
}  // namespace pangulu
