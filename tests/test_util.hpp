// Shared helpers for the test suite: pattern-closure utilities that make
// randomly generated blocks valid kernel inputs. Inside the solver pipeline,
// symbolic factorisation guarantees patterns are closed under elimination;
// standalone kernel tests must establish the same invariant by hand so the
// sparse kernels and the dense references agree exactly.
#pragma once

#include <vector>

#include "sparse/csc.hpp"
#include "symbolic/fill.hpp"

namespace pangulu::test {

/// Pattern of `a` closed under its own LU elimination (fill added as
/// explicit zeros): valid GETRF input.
inline Csc close_lu_pattern(const Csc& a) {
  symbolic::SymbolicResult sym;
  symbolic::symbolic_unsymmetric(a, /*use_pruning=*/false, &sym).check();
  return sym.filled;
}

/// Close B's column patterns under forward substitution with the unit-lower
/// part of `lu`: if row k is present in a column and L(r,k) != 0 (r > k),
/// row r must be present too.
inline Csc close_lower_solve_pattern(const Csc& lu, const Csc& b) {
  const index_t n = b.n_rows();
  Coo coo(b.n_rows(), b.n_cols());
  std::vector<char> present(static_cast<std::size_t>(n));
  for (index_t j = 0; j < b.n_cols(); ++j) {
    std::fill(present.begin(), present.end(), 0);
    for (nnz_t p = b.col_begin(j); p < b.col_end(j); ++p)
      present[static_cast<std::size_t>(
          b.row_idx()[static_cast<std::size_t>(p)])] = 1;
    // Ascending sweep reaches a fixpoint in one pass (L is lower-triangular).
    for (index_t k = 0; k < n; ++k) {
      if (!present[static_cast<std::size_t>(k)]) continue;
      for (nnz_t q = lu.col_begin(k); q < lu.col_end(k); ++q) {
        const index_t r = lu.row_idx()[static_cast<std::size_t>(q)];
        if (r > k) present[static_cast<std::size_t>(r)] = 1;
      }
    }
    for (index_t r = 0; r < n; ++r) {
      if (present[static_cast<std::size_t>(r)])
        coo.add(r, j, b.at(r, j));
    }
  }
  return Csc::from_coo(coo);
}

/// Close B's row patterns under backward substitution with the upper part
/// of `lu`: if column k is present in a row and U(k,m) != 0 (m > k), column
/// m must be present too.
inline Csc close_upper_solve_pattern(const Csc& lu, const Csc& b) {
  const index_t n = b.n_cols();
  Coo coo(b.n_rows(), b.n_cols());
  std::vector<char> present(static_cast<std::size_t>(n));
  Csc bt = b.transpose();  // rows of b as columns
  for (index_t i = 0; i < b.n_rows(); ++i) {
    std::fill(present.begin(), present.end(), 0);
    for (nnz_t p = bt.col_begin(i); p < bt.col_end(i); ++p)
      present[static_cast<std::size_t>(
          bt.row_idx()[static_cast<std::size_t>(p)])] = 1;
    for (index_t k = 0; k < n; ++k) {
      if (!present[static_cast<std::size_t>(k)]) continue;
      // U(k, m) entries live in columns m >= k of lu at row k.
      for (index_t m = k + 1; m < n; ++m) {
        if (lu.find(k, m) >= 0) present[static_cast<std::size_t>(m)] = 1;
      }
    }
    for (index_t m = 0; m < n; ++m) {
      if (present[static_cast<std::size_t>(m)])
        coo.add(i, m, b.at(i, m));
    }
  }
  return Csc::from_coo(coo);
}

/// C's pattern extended with pattern(A*B): valid SSSSM target.
inline Csc add_product_pattern(const Csc& a, const Csc& b, const Csc& c) {
  Coo coo(c.n_rows(), c.n_cols());
  for (index_t j = 0; j < c.n_cols(); ++j) {
    for (nnz_t p = c.col_begin(j); p < c.col_end(j); ++p)
      coo.add(c.row_idx()[static_cast<std::size_t>(p)], j,
              c.values()[static_cast<std::size_t>(p)]);
  }
  for (index_t j = 0; j < b.n_cols(); ++j) {
    for (nnz_t q = b.col_begin(j); q < b.col_end(j); ++q) {
      const index_t k = b.row_idx()[static_cast<std::size_t>(q)];
      for (nnz_t p = a.col_begin(k); p < a.col_end(k); ++p)
        coo.add(a.row_idx()[static_cast<std::size_t>(p)], j, value_t(0));
    }
  }
  return Csc::from_coo(coo);
}

}  // namespace pangulu::test
