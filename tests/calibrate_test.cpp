#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "kernels/calibrate.hpp"

namespace pangulu::kernels {
namespace {

TEST(Calibrate, FindsObviousCrossover) {
  // Low kernel wins below metric 100, high kernel above.
  std::vector<PairedSample> samples;
  for (int i = 1; i <= 200; ++i) {
    const double m = i;
    const double t_low = 1.0 + 0.05 * m;   // cheap start, bad slope
    const double t_high = 5.0 + 0.01 * m;  // launch cost, good slope
    samples.push_back({m, t_low, t_high});
  }
  // Analytic crossover: 1 + 0.05m = 5 + 0.01m -> m = 100.
  const double th = fit_crossover(samples);
  EXPECT_NEAR(th, 100.0, 2.0);
  // The fitted threshold must cost no more than any probe threshold.
  for (double probe : {0.0, 50.0, 100.0, 150.0, 1e9}) {
    EXPECT_LE(policy_cost(samples, th), policy_cost(samples, probe) + 1e-9);
  }
}

TEST(Calibrate, OneKernelDominatesEverywhere) {
  std::vector<PairedSample> samples;
  for (int i = 1; i <= 50; ++i)
    samples.push_back({static_cast<double>(i), 1.0, 2.0});
  // Low kernel always wins: threshold above every metric.
  EXPECT_GT(fit_crossover(samples), 50.0);

  for (auto& s : samples) std::swap(s.time_low, s.time_high);
  // High kernel always wins: threshold below every metric.
  EXPECT_LT(fit_crossover(samples), 1.0);
}

TEST(Calibrate, EmptyAndSingleSample) {
  EXPECT_EQ(fit_crossover({}), 0.0);
  std::vector<PairedSample> one = {{10.0, 1.0, 2.0}};
  const double th = fit_crossover(one);
  EXPECT_GT(th, 10.0);  // low kernel wins -> cut above the sample
}

TEST(Calibrate, NoisyDataStillNearTrueCrossover) {
  std::vector<PairedSample> samples;
  unsigned state = 12345;
  auto noise = [&state]() {
    state = state * 1664525u + 1013904223u;
    return (static_cast<double>(state >> 16) / 65536.0 - 0.5) * 0.4;
  };
  for (int i = 1; i <= 500; ++i) {
    const double m = i * 2.0;
    samples.push_back({m, 1.0 + 0.02 * m + noise(), 9.0 + 0.002 * m + noise()});
  }
  // True crossover near m = 444.
  EXPECT_NEAR(fit_crossover(samples), 444.0, 60.0);
}

TEST(Calibrate, ThresholdFileRecordsPrecisionAndRoundTrips) {
  const std::string path = ::testing::TempDir() + "/thresholds_fp32.txt";
  SelectorThresholds t;
  t.getrf_cpu_nnz = 1234.5;
  t.ssssm_gv1_flops = 7.25e8;
  for (Precision p :
       {Precision::kDouble, Precision::kSingle, Precision::kMixedIR}) {
    ASSERT_TRUE(save_thresholds(path, t, p).is_ok());
    SelectorThresholds back;
    Precision file_p = Precision::kDouble;
    ASSERT_TRUE(load_thresholds(path, &back, &file_p).is_ok());
    EXPECT_EQ(file_p, p) << precision_name(p);
    EXPECT_EQ(back.getrf_cpu_nnz, t.getrf_cpu_nnz);
    EXPECT_EQ(back.ssssm_gv1_flops, t.ssssm_gv1_flops);
  }
}

TEST(Calibrate, PrePrecisionThresholdFilesStillLoadAsFp64) {
  // A file from before the precision field: no `precision` line at all.
  const std::string path = ::testing::TempDir() + "/thresholds_legacy.txt";
  {
    std::ofstream out(path);
    out << "# legacy FP64-era thresholds\n";
    out << "getrf_cpu_nnz 4096\n";
  }
  SelectorThresholds t;
  Precision file_p = Precision::kMixedIR;  // must be overwritten
  ASSERT_TRUE(load_thresholds(path, &t, &file_p).is_ok());
  EXPECT_EQ(file_p, Precision::kDouble);
  EXPECT_EQ(t.getrf_cpu_nnz, 4096.0);

  // An unknown precision name is a typed I/O error, not a silent default.
  {
    std::ofstream out(path);
    out << "precision half\n";
  }
  EXPECT_EQ(load_thresholds(path, &t, &file_p).code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace pangulu::kernels
