// Solver sessions: pattern-reuse refactorisation (bitwise identical to a
// from-scratch run), panel multi-RHS solves (column-for-column bitwise
// identical to single-RHS solves), the pattern-fingerprint admission checks,
// the SessionPool budgeting, and the concurrent refactorize/solve stress.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "matgen/generators.hpp"
#include "runtime/trsv_sim.hpp"
#include "solver/session.hpp"
#include "solver/solver.hpp"
#include "sparse/ops.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace pangulu::solver {
namespace {

std::vector<value_t> make_rhs(const Csc& a) {
  std::vector<value_t> ones(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  a.spmv(ones, b);
  return b;
}

/// All factor-block values in block-position order: the bitwise identity
/// witness two factorisations are compared by.
std::vector<value_t> factor_bits(const Solver& s) {
  std::vector<value_t> v;
  const auto& f = s.factors();
  for (nnz_t pos = 0; pos < static_cast<nnz_t>(f.n_blocks()); ++pos) {
    auto vals = f.block(pos).values();
    v.insert(v.end(), vals.begin(), vals.end());
  }
  return v;
}

/// Deterministic same-pattern value perturbation (a Newton-style update):
/// scale each entry, keeping diagonal dominance intact.
Csc perturb_values(const Csc& a, unsigned seed) {
  Csc p = a;
  Rng rng(seed);
  auto vals = p.values_mut();
  for (value_t& v : vals) v *= static_cast<value_t>(rng.uniform(0.9, 1.1));
  return p;
}

Options no_mc64_options() {
  Options opts;
  // MC64 scaling/permutation is value-derived and frozen at setup; with it
  // off the whole pipeline is a pure function of the pattern, making the
  // strict refactorize-vs-fresh bitwise comparison meaningful on perturbed
  // values (see DESIGN.md, safe-reuse contract).
  opts.reorder.use_mc64 = false;
  opts.reorder.apply_scaling = false;
  return opts;
}

TEST(SessionRefactorize, BitwiseIdenticalToFreshFactorize) {
  const Csc mats[] = {matgen::grid2d_laplacian(16, 16),
                      matgen::circuit(250, 2.0, 2.2, 17),
                      matgen::cage_style(180, 3, 9)};
  int family = 0;
  for (const Csc& a : mats) {
    SCOPED_TRACE("family " + std::to_string(family++));
    Options opts = no_mc64_options();
    opts.n_ranks = 4;
    Solver reused;
    ASSERT_TRUE(reused.factorize(a, opts).is_ok());
    const Csc a2 = perturb_values(a, 1234);
    ASSERT_TRUE(reused.refactorize(a2).is_ok());
    Solver fresh;
    ASSERT_TRUE(fresh.factorize(a2, opts).is_ok());
    EXPECT_EQ(factor_bits(reused), factor_bits(fresh));
    EXPECT_EQ(reused.stats().nnz_lu, fresh.stats().nnz_lu);
    // And the reused solver still solves the new system.
    auto b = make_rhs(a2);
    std::vector<value_t> x(b.size(), 0.0);
    ASSERT_TRUE(reused.solve(b, x).is_ok());
    EXPECT_LT(relative_residual(a2, x, b), 1e-9);
  }
}

TEST(SessionRefactorize, BitwiseIdenticalWithMc64OnOriginalValues) {
  // With MC64 on, refactorising the *same* values must reproduce the
  // factors exactly (the frozen scaling is the one a fresh run would pick).
  Csc a = matgen::circuit(220, 2.0, 2.2, 31);
  Options opts;
  opts.n_ranks = 2;
  Solver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  const std::vector<value_t> before = factor_bits(s);
  ASSERT_TRUE(s.refactorize(a).is_ok());
  EXPECT_EQ(before, factor_bits(s));
}

TEST(SessionRefactorize, SkipsEveryStructurePhase) {
  Csc a = matgen::grid2d_laplacian(14, 14);
  Solver s;
  ASSERT_TRUE(s.factorize(a, Options{}).is_ok());
  ASSERT_TRUE(s.refactorize(perturb_values(a, 7)).is_ok());
  // Numeric-only: the structure phases did not run at all.
  EXPECT_EQ(s.stats().reorder_seconds, 0.0);
  EXPECT_EQ(s.stats().symbolic_seconds, 0.0);
  EXPECT_EQ(s.stats().preprocess_seconds, 0.0);
  EXPECT_EQ(s.stats().blocking_seconds, 0.0);
  EXPECT_EQ(s.stats().mapping_seconds, 0.0);
  EXPECT_EQ(s.stats().plan_seconds, 0.0);
  EXPECT_EQ(s.stats().verify_seconds, 0.0);
  EXPECT_GT(s.stats().numeric_wall_seconds, 0.0);
}

TEST(SessionRefactorize, ValueArrayPath) {
  Csc a = matgen::grid2d_laplacian(12, 12);
  Options opts = no_mc64_options();
  Solver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  const Csc a2 = perturb_values(a, 99);
  ASSERT_TRUE(s.refactorize_values(a2.values()).is_ok());
  Solver fresh;
  ASSERT_TRUE(fresh.factorize(a2, opts).is_ok());
  EXPECT_EQ(factor_bits(s), factor_bits(fresh));
}

TEST(SessionRefactorize, RejectsWrongValueCount) {
  Csc a = matgen::grid2d_laplacian(10, 10);
  Solver s;
  ASSERT_TRUE(s.factorize(a, Options{}).is_ok());
  std::vector<value_t> wrong(static_cast<std::size_t>(a.nnz()) - 1, 1.0);
  Status st = s.refactorize_values(wrong);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  // The failed call must not have invalidated the factorisation.
  auto b = make_rhs(a);
  std::vector<value_t> x(b.size(), 0.0);
  EXPECT_TRUE(s.solve(b, x).is_ok());
}

TEST(Session, PatternHashRejectsDifferentPattern) {
  Session session;
  Csc a = matgen::grid2d_laplacian(12, 12);
  ASSERT_TRUE(session.setup(a, Options{}).is_ok());
  EXPECT_TRUE(session.ready());
  EXPECT_NE(session.pattern_hash(), 0u);
  // Same order, different pattern: the fingerprint must reject it before
  // any numeric work happens.
  Csc other = matgen::circuit(144, 2.0, 2.2, 5);
  ASSERT_EQ(other.n_cols(), a.n_cols());
  Status st = session.refactorize(other);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(session.ready()) << "a rejected refactorize must not tear down";
  // Same pattern, new values: accepted.
  EXPECT_TRUE(session.refactorize(perturb_values(a, 3)).is_ok());
  // Wrong value count through the span path.
  std::vector<value_t> wrong(3, 1.0);
  EXPECT_EQ(session.refactorize(std::span<const value_t>(wrong)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Session, FingerprintIsValueBlind) {
  Csc a = matgen::grid2d_laplacian(9, 9);
  const std::uint64_t h = pattern_fingerprint(a);
  EXPECT_EQ(h, pattern_fingerprint(perturb_values(a, 5)));
  EXPECT_NE(h, pattern_fingerprint(matgen::grid2d_laplacian(9, 8)));
}

TEST(SessionMultiRhs, MatchesSingleSolveColumnForColumn) {
  const Csc mats[] = {matgen::grid2d_laplacian(15, 15),
                      matgen::circuit(200, 2.0, 2.2, 11)};
  for (const Csc& a : mats) {
    const index_t n = a.n_cols();
    Solver s;
    ASSERT_TRUE(s.factorize(a, Options{}).is_ok());
    for (index_t k : {index_t(1), index_t(3), index_t(8)}) {
      SCOPED_TRACE("k=" + std::to_string(k));
      Rng rng(42u + static_cast<unsigned>(k));
      Dense b(n, k);
      for (index_t j = 0; j < k; ++j)
        for (index_t i = 0; i < n; ++i)
          b(i, j) = static_cast<value_t>(rng.uniform(-1.0, 1.0));
      Dense x;
      SolveStats worst;
      ASSERT_TRUE(s.solve_multi(b, &x, &worst).is_ok());
      std::vector<value_t> bc(static_cast<std::size_t>(n));
      std::vector<value_t> xc(static_cast<std::size_t>(n));
      int max_iters = 0;
      value_t max_resid = 0;
      for (index_t j = 0; j < k; ++j) {
        for (index_t i = 0; i < n; ++i) bc[static_cast<std::size_t>(i)] = b(i, j);
        SolveStats ss;
        ASSERT_TRUE(s.solve(bc, xc, &ss).is_ok());
        for (index_t i = 0; i < n; ++i) {
          // Bitwise: the panel sweep runs each column's exact op sequence.
          EXPECT_EQ(x(i, j), xc[static_cast<std::size_t>(i)])
              << "col " << j << " row " << i;
        }
        max_iters = std::max(max_iters, ss.refine_iterations);
        max_resid = std::max(max_resid, ss.final_residual);
      }
      EXPECT_EQ(worst.refine_iterations, max_iters);
      EXPECT_EQ(worst.final_residual, max_resid);
    }
  }
}

TEST(SessionMultiRhs, TransposeMatchesSingleColumnForColumn) {
  Csc a = matgen::cage_style(160, 3, 7);
  const index_t n = a.n_cols();
  Solver s;
  ASSERT_TRUE(s.factorize(a, Options{}).is_ok());
  const index_t k = 5;
  Rng rng(7);
  Dense b(n, k);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < n; ++i)
      b(i, j) = static_cast<value_t>(rng.uniform(-1.0, 1.0));
  Dense x;
  ASSERT_TRUE(s.solve_multi_transpose(b, &x).is_ok());
  std::vector<value_t> bc(static_cast<std::size_t>(n));
  std::vector<value_t> xc(static_cast<std::size_t>(n));
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < n; ++i) bc[static_cast<std::size_t>(i)] = b(i, j);
    ASSERT_TRUE(s.solve_transpose(bc, xc).is_ok());
    for (index_t i = 0; i < n; ++i)
      EXPECT_EQ(x(i, j), xc[static_cast<std::size_t>(i)]);
  }
}

TEST(SessionMultiRhs, TrsvPanelMatchesSingleVector) {
  Csc a = matgen::grid2d_laplacian(13, 13);
  const index_t n = a.n_cols();
  Options opts;
  opts.n_ranks = 4;
  Solver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  runtime::TrsvOptions topts;
  topts.n_ranks = opts.n_ranks;
  for (bool lower : {true, false}) {
    SCOPED_TRACE(lower ? "lower" : "upper");
    runtime::TrsvPlan plan;
    ASSERT_TRUE(runtime::build_trsv_plan(s.factors(), s.mapping(), lower,
                                         topts, &plan)
                    .is_ok());
    Rng rng(lower ? 1u : 2u);
    std::vector<value_t> x1(static_cast<std::size_t>(n));
    for (value_t& v : x1) v = static_cast<value_t>(rng.uniform(-1.0, 1.0));
    // k = 1 panel (stride 1 is the plain vector layout) vs the single-vector
    // path: numerics AND schedule metrics (makespan, messages, bytes) must
    // match exactly.
    std::vector<value_t> xp(x1);
    runtime::SimResult single, panel;
    std::vector<value_t> xs(x1);
    ASSERT_TRUE(
        runtime::simulate_trsv(s.factors(), plan, xs, topts, &single).is_ok());
    ASSERT_TRUE(runtime::simulate_trsv_panel(s.factors(), plan, xp.data(), 1, 1,
                                             topts, &panel)
                    .is_ok());
    EXPECT_EQ(xs, xp);
    EXPECT_EQ(single.makespan, panel.makespan);
    EXPECT_EQ(single.messages, panel.messages);
    EXPECT_EQ(single.bytes, panel.bytes);
    // k = 4 row-interleaved panel (column c of row r at x[r * k + c]): each
    // column bitwise equals its own single-vector run; one sweep carries
    // k-fold payload, so traffic scales with k.
    const index_t k = 4;
    std::vector<value_t> cols(static_cast<std::size_t>(n) * k);
    for (value_t& v : cols) v = static_cast<value_t>(rng.uniform(-1.0, 1.0));
    std::vector<value_t> panel_x(cols.size());
    for (index_t c = 0; c < k; ++c)
      for (index_t i = 0; i < n; ++i)
        panel_x[static_cast<std::size_t>(i) * k + c] =
            cols[static_cast<std::size_t>(c) * n + i];
    runtime::SimResult rk;
    ASSERT_TRUE(runtime::simulate_trsv_panel(s.factors(), plan, panel_x.data(),
                                             k, k, topts, &rk)
                    .is_ok());
    for (index_t c = 0; c < k; ++c) {
      std::vector<value_t> xc(
          cols.begin() + static_cast<std::ptrdiff_t>(c) * n,
          cols.begin() + static_cast<std::ptrdiff_t>(c + 1) * n);
      runtime::SimResult rc;
      ASSERT_TRUE(
          runtime::simulate_trsv(s.factors(), plan, xc, topts, &rc).is_ok());
      for (index_t i = 0; i < n; ++i)
        EXPECT_EQ(panel_x[static_cast<std::size_t>(i) * k + c],
                  xc[static_cast<std::size_t>(i)]);
    }
    EXPECT_EQ(rk.messages, single.messages)
        << "same schedule: message count is k-independent";
    EXPECT_EQ(rk.bytes, single.bytes * k);
  }
}

TEST(SessionPool, BudgetAdmissionControl) {
  SessionPoolOptions popts;
  popts.max_concurrent = 2;
  popts.memory_budget_bytes = 1000;
  SessionPool pool(popts);

  // A request larger than the whole budget can never run.
  SessionPool::Ticket oversize;
  EXPECT_EQ(pool.admit(1001, &oversize).code(),
            StatusCode::kResourceExhausted);
  EXPECT_FALSE(oversize.admitted());

  {
    SessionPool::Ticket t1, t2;
    ASSERT_TRUE(pool.admit(400, &t1).is_ok());
    ASSERT_TRUE(pool.admit(400, &t2).is_ok());
    EXPECT_EQ(pool.in_flight(), 2);
    EXPECT_EQ(pool.bytes_in_flight(), 800u);
    // A third admission must wait for a slot; release t1 from another
    // thread and the waiter gets in.
    std::atomic<bool> admitted{false};
    std::thread waiter([&] {
      SessionPool::Ticket t3;
      ASSERT_TRUE(pool.admit(500, &t3).is_ok());
      admitted.store(true);
    });
    EXPECT_FALSE(admitted.load());
    t1.release();
    waiter.join();
    EXPECT_TRUE(admitted.load());
  }
  EXPECT_EQ(pool.in_flight(), 0);
  EXPECT_EQ(pool.bytes_in_flight(), 0u);
  EXPECT_EQ(pool.peak_in_flight(), 2);
}

TEST(Session, FootprintReportsPatternState) {
  Session session;
  EXPECT_EQ(session.footprint_bytes(), 0u);
  Csc a = matgen::grid2d_laplacian(12, 12);
  ASSERT_TRUE(session.setup(a, Options{}).is_ok());
  const std::size_t fp = session.footprint_bytes();
  EXPECT_GT(fp, static_cast<std::size_t>(session.stats().nnz_lu) *
                    sizeof(value_t));
}

// Concurrent refactorize/solve interleaving under the session lock. Runs in
// the TSan build via the "faults" ctest label; sized to stay fast there.
TEST(SessionStress, ConcurrentRefactorizeAndSolve) {
  Csc a = matgen::grid2d_laplacian(10, 10);
  const index_t n = a.n_cols();
  Session session;
  Options opts = no_mc64_options();
  ASSERT_TRUE(session.setup(a, opts).is_ok());

  SessionPoolOptions popts;
  popts.max_concurrent = 3;
  popts.memory_budget_bytes = 4 * session.footprint_bytes();
  SessionPool pool(popts);

  constexpr int kSolversPerThread = 12;
  constexpr int kRefactorizes = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100u + static_cast<unsigned>(t));
      for (int i = 0; i < kSolversPerThread; ++i) {
        SessionPool::Ticket ticket;
        if (!pool.admit(session.footprint_bytes() / 8, &ticket).is_ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (i % 3 == 0) {
          Dense b(n, 4);
          for (index_t j = 0; j < 4; ++j)
            for (index_t r = 0; r < n; ++r)
              b(r, j) = static_cast<value_t>(rng.uniform(-1.0, 1.0));
          Dense x;
          if (!session.solve_multi(b, &x).is_ok()) failures.fetch_add(1);
        } else {
          std::vector<value_t> b(static_cast<std::size_t>(n));
          for (value_t& v : b) v = static_cast<value_t>(rng.uniform(-1.0, 1.0));
          std::vector<value_t> x(static_cast<std::size_t>(n));
          if (!session.solve(b, x).is_ok()) failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kRefactorizes; ++i) {
      SessionPool::Ticket ticket;
      if (!pool.admit(session.footprint_bytes(), &ticket).is_ok()) {
        failures.fetch_add(1);
        continue;
      }
      Csc a2 = perturb_values(a, 500u + static_cast<unsigned>(i));
      if (!session.refactorize(a2).is_ok()) failures.fetch_add(1);
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.in_flight(), 0);
  EXPECT_LE(pool.peak_in_flight(), 3);

  // The session still answers correctly after the storm.
  ASSERT_TRUE(session.refactorize(a.values()).is_ok());
  auto b = make_rhs(a);
  std::vector<value_t> x(b.size(), 0.0);
  ASSERT_TRUE(session.solve(b, x).is_ok());
  EXPECT_LT(relative_residual(a, x, b), 1e-9);
}

// Regression: admit() used to park forever on a full pool. With the pool
// timeout set it must come back typed — and fast enough to notice a hang.
TEST(SessionPool, StarvedAdmitTimesOutTyped) {
  SessionPoolOptions popts;
  popts.max_concurrent = 1;
  popts.default_admit_timeout_seconds = 0.05;
  SessionPool pool(popts);
  SessionPool::Ticket holder;
  ASSERT_TRUE(pool.admit(1, &holder).is_ok());

  SessionPool::Ticket blocked;
  Timer t;
  const Status st = pool.admit(1, &blocked);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.message();
  EXPECT_FALSE(blocked.admitted());
  EXPECT_LT(t.seconds(), 5.0) << "starved admit must not hang";

  holder.release();
  ASSERT_TRUE(pool.admit(1, &blocked).is_ok());
}

TEST(SessionPool, AdmitShedsExpiredDeadlineImmediately) {
  SessionPoolOptions popts;
  popts.max_concurrent = 1;
  SessionPool pool(popts);
  SessionPool::Ticket holder;
  ASSERT_TRUE(pool.admit(1, &holder).is_ok());

  CancelToken expired;
  expired.set_wall_deadline_after(-1.0);
  SessionPool::Ticket t;
  EXPECT_EQ(pool.admit(1, &t, &expired).code(),
            StatusCode::kDeadlineExceeded);

  // An unconstrained token on a free pool sails through.
  holder.release();
  CancelToken fine;
  EXPECT_TRUE(pool.admit(1, &t, &fine).is_ok());
}

TEST(SessionPool, AdmitManualCancelUnparksWaiter) {
  SessionPoolOptions popts;
  popts.max_concurrent = 1;
  SessionPool pool(popts);
  SessionPool::Ticket holder;
  ASSERT_TRUE(pool.admit(1, &holder).is_ok());

  CancelToken tok;
  std::atomic<int> code{-1};
  std::thread waiter([&] {
    SessionPool::Ticket t;
    code.store(static_cast<int>(pool.admit(1, &t, &tok).code()));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  tok.cancel();
  waiter.join();
  EXPECT_EQ(code.load(), static_cast<int>(StatusCode::kCancelled));
}

TEST(SessionPool, QueueFullRejectsTyped) {
  SessionPoolOptions popts;
  popts.max_concurrent = 1;
  popts.max_queue_depth = 1;
  popts.default_admit_timeout_seconds = 2.0;
  SessionPool pool(popts);
  SessionPool::Ticket holder;
  ASSERT_TRUE(pool.admit(1, &holder).is_ok());

  std::atomic<bool> queued_ok{false};
  std::thread queued([&] {
    SessionPool::Ticket t;
    queued_ok.store(pool.admit(1, &t).is_ok());
  });
  // Wait until the first waiter is actually parked, then overflow the queue.
  while (pool.stats().queue_depth < 1) std::this_thread::yield();
  SessionPool::Ticket overflow;
  EXPECT_EQ(pool.admit(1, &overflow).code(),
            StatusCode::kResourceExhausted);

  holder.release();
  queued.join();
  EXPECT_TRUE(queued_ok.load()) << "the parked waiter still gets its slot";

  const SessionPoolStats ps = pool.stats();
  EXPECT_EQ(ps.rejected_queue_full, 1);
  EXPECT_GE(ps.peak_queue_depth, 1);
}

TEST(SessionPool, StatsCountAdmissionOutcomes) {
  SessionPoolOptions popts;
  popts.max_concurrent = 1;
  popts.default_admit_timeout_seconds = 0.02;
  SessionPool pool(popts);
  {
    SessionPool::Ticket a1;
    ASSERT_TRUE(pool.admit(1, &a1).is_ok());
    SessionPool::Ticket starved;
    EXPECT_FALSE(pool.admit(1, &starved).is_ok());
  }
  SessionPool::Ticket a2;
  ASSERT_TRUE(pool.admit(1, &a2).is_ok());

  const SessionPoolStats ps = pool.stats();
  EXPECT_EQ(ps.admitted, 2);
  EXPECT_EQ(ps.shed, 1);
  EXPECT_EQ(ps.queue_depth, 0);
  EXPECT_GE(ps.p95_wait_seconds, 0.0);
  EXPECT_GE(ps.mean_wait_seconds, 0.0);
}

TEST(Session, SolveDeadlineShedsAndStaysUsable) {
  Csc a = matgen::grid2d_laplacian(12, 12);
  Session session;
  ASSERT_TRUE(session.setup(a, no_mc64_options()).is_ok());
  const auto b = make_rhs(a);
  std::vector<value_t> want(b.size(), 0.0);
  ASSERT_TRUE(session.solve(b, want).is_ok());

  const value_t sentinel = static_cast<value_t>(-99.25);
  for (double dl : {0.0, -1.0, 1e-9}) {
    SCOPED_TRACE("deadline " + std::to_string(dl));
    std::vector<value_t> x(b.size(), sentinel);
    const Status st = session.solve_deadline(b, x, dl);
    EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.message();
    for (value_t v : x) ASSERT_EQ(v, sentinel) << "shed must not touch x";
    EXPECT_TRUE(session.ready()) << "a missed deadline is not a broken session";
  }

  // A roomy deadline behaves exactly like solve().
  std::vector<value_t> x(b.size(), 0.0);
  SolveStats stats;
  ASSERT_TRUE(session.solve_deadline(b, x, 60.0, &stats).is_ok());
  EXPECT_EQ(x, want);
}

TEST(SessionPool, JitteredBackoffIsBoundedAndDeterministic) {
  const double base = 0.01, cap = 0.5;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double nominal = std::min(cap, base * std::ldexp(1.0, attempt));
    // Deterministic: the same Rng state gives the same suggestion.
    Rng probe(42), probe2(42);
    const double s1 = jittered_backoff_seconds(attempt, base, cap, probe);
    const double s2 = jittered_backoff_seconds(attempt, base, cap, probe2);
    EXPECT_EQ(s1, s2);
    // Jitter keeps the suggestion in [nominal / 2, nominal].
    EXPECT_GE(s1, nominal * 0.5);
    EXPECT_LE(s1, nominal);
  }
  // The cap holds even for absurd attempt counts (no shift overflow).
  Rng late(7);
  EXPECT_LE(jittered_backoff_seconds(1000, base, cap, late), cap);
}

}  // namespace
}  // namespace pangulu::solver
