#include <gtest/gtest.h>

#include <sstream>

#include "io/matrix_market.hpp"
#include "matgen/generators.hpp"

namespace pangulu::io {
namespace {

TEST(MatrixMarket, RoundTrip) {
  Csc m = matgen::random_sparse(40, 4, 77);
  std::stringstream ss;
  ASSERT_TRUE(write_matrix_market(ss, m).is_ok());
  Csc back;
  ASSERT_TRUE(read_matrix_market(ss, &back).is_ok());
  EXPECT_TRUE(m.approx_equal(back, 1e-15));
}

TEST(MatrixMarket, ReadsSymmetricStorage) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% a comment\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "3 2 -1.0\n"
      "3 3 2.0\n");
  Csc m;
  ASSERT_TRUE(read_matrix_market(ss, &m).is_ok());
  EXPECT_EQ(m.nnz(), 6);  // two off-diagonal entries mirrored
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
}

TEST(MatrixMarket, ReadsPatternAsOnes) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  Csc m;
  ASSERT_TRUE(read_matrix_market(ss, &m).is_ok());
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 1.0);
}

TEST(MatrixMarket, ReadsSkewSymmetric) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  Csc m;
  ASSERT_TRUE(read_matrix_market(ss, &m).is_ok());
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -3.0);
}

TEST(MatrixMarket, RejectsGarbage) {
  Csc m;
  {
    std::stringstream ss("not a matrix market file\n1 1 1\n");
    EXPECT_FALSE(read_matrix_market(ss, &m).is_ok());
  }
  {
    std::stringstream ss("%%MatrixMarket matrix array real general\n2 2\n");
    EXPECT_FALSE(read_matrix_market(ss, &m).is_ok());
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n");
    EXPECT_FALSE(read_matrix_market(ss, &m).is_ok());  // index out of range
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n");
    EXPECT_FALSE(read_matrix_market(ss, &m).is_ok());  // truncated
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  Csc m = matgen::grid2d_laplacian(6, 6);
  const std::string path = ::testing::TempDir() + "/pangulu_io_test.mtx";
  ASSERT_TRUE(write_matrix_market_file(path, m).is_ok());
  Csc back;
  ASSERT_TRUE(read_matrix_market_file(path, &back).is_ok());
  EXPECT_TRUE(m.approx_equal(back, 1e-15));
  EXPECT_FALSE(read_matrix_market_file("/nonexistent/file.mtx", &back).is_ok());
}

}  // namespace
}  // namespace pangulu::io
