#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "io/matrix_market.hpp"
#include "matgen/generators.hpp"

namespace pangulu::io {
namespace {

TEST(MatrixMarket, RoundTrip) {
  Csc m = matgen::random_sparse(40, 4, 77);
  std::stringstream ss;
  ASSERT_TRUE(write_matrix_market(ss, m).is_ok());
  Csc back;
  ASSERT_TRUE(read_matrix_market(ss, &back).is_ok());
  EXPECT_TRUE(m.approx_equal(back, 1e-15));
}

TEST(MatrixMarket, ReadsSymmetricStorage) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% a comment\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "3 2 -1.0\n"
      "3 3 2.0\n");
  Csc m;
  ASSERT_TRUE(read_matrix_market(ss, &m).is_ok());
  EXPECT_EQ(m.nnz(), 6);  // two off-diagonal entries mirrored
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
}

TEST(MatrixMarket, ReadsPatternAsOnes) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  Csc m;
  ASSERT_TRUE(read_matrix_market(ss, &m).is_ok());
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 1.0);
}

TEST(MatrixMarket, ReadsSkewSymmetric) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  Csc m;
  ASSERT_TRUE(read_matrix_market(ss, &m).is_ok());
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -3.0);
}

TEST(MatrixMarket, RejectsGarbage) {
  Csc m;
  {
    std::stringstream ss("not a matrix market file\n1 1 1\n");
    EXPECT_FALSE(read_matrix_market(ss, &m).is_ok());
  }
  {
    std::stringstream ss("%%MatrixMarket matrix array real general\n2 2\n");
    EXPECT_FALSE(read_matrix_market(ss, &m).is_ok());
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n");
    EXPECT_FALSE(read_matrix_market(ss, &m).is_ok());  // index out of range
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n");
    EXPECT_FALSE(read_matrix_market(ss, &m).is_ok());  // truncated
  }
}

TEST(MatrixMarket, RejectsNonFiniteValues) {
  Csc m;
  for (const char* v : {"nan", "NaN", "inf", "-inf", "Infinity"}) {
    std::stringstream ss(
        std::string("%%MatrixMarket matrix coordinate real general\n"
                    "2 2 1\n1 1 ") +
        v + "\n");
    Status s = read_matrix_market(ss, &m);
    EXPECT_FALSE(s.is_ok()) << "accepted value " << v;
  }
}

TEST(MatrixMarket, RejectsDuplicateEntries) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 1.0\n"
      "1 1 2.0\n"
      "2 2 3.0\n");
  Csc m;
  Status s = read_matrix_market(ss, &m);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("duplicate"), std::string::npos);
}

TEST(MatrixMarket, RejectsTrailingGarbage) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1 1.0\n"
      "2 2 5.0\n");  // one more entry than the header promised
  Csc m;
  EXPECT_EQ(read_matrix_market(ss, &m).code(), StatusCode::kIoError);
}

TEST(MatrixMarket, RejectsHeaderLies) {
  Csc m;
  {
    // symmetric but not square
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 1 1.0\n");
    EXPECT_EQ(read_matrix_market(ss, &m).code(), StatusCode::kIoError);
  }
  {
    // skew-symmetric with a stored diagonal entry
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        "2 2 1\n1 1 1.0\n");
    EXPECT_EQ(read_matrix_market(ss, &m).code(), StatusCode::kIoError);
  }
  {
    // dimension line that is not numbers
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\nfoo bar baz\n");
    EXPECT_EQ(read_matrix_market(ss, &m).code(), StatusCode::kIoError);
  }
  {
    // header promises entries, stream ends immediately
    std::stringstream ss("%%MatrixMarket matrix coordinate real general\n");
    EXPECT_EQ(read_matrix_market(ss, &m).code(), StatusCode::kIoError);
  }
  {
    // dimensions beyond the 32-bit index the solver works in
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n"
        "4294967296 4294967296 0\n");
    EXPECT_EQ(read_matrix_market(ss, &m).code(), StatusCode::kOutOfRange);
  }
}

// Malformed-input property test: seeded single-character corruptions of a
// well-formed file must never crash the parser — every outcome is either a
// clean parse (the corruption hit whitespace, a comment, or a value digit)
// or a typed Status.
TEST(MatrixMarket, SeededCorruptionsNeverCrash) {
  Csc m = matgen::random_sparse(20, 3, 11);
  std::stringstream ss;
  ASSERT_TRUE(write_matrix_market(ss, m).is_ok());
  const std::string clean = ss.str();

  std::mt19937_64 rng(2026);
  std::uniform_int_distribution<std::size_t> pos_d(0, clean.size() - 1);
  std::uniform_int_distribution<int> chr_d(0, 94);
  int failures = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string bad = clean;
    const std::size_t pos = pos_d(rng);
    bad[pos] = static_cast<char>(' ' + chr_d(rng));
    std::stringstream rs(bad);
    Csc out;
    Status s = read_matrix_market(rs, &out);
    if (!s.is_ok()) {
      ++failures;
      EXPECT_FALSE(s.message().empty());
    }
  }
  // Most single-character corruptions of a coordinate file are detectable.
  EXPECT_GT(failures, 50);
}

TEST(MatrixMarket, FileRoundTrip) {
  Csc m = matgen::grid2d_laplacian(6, 6);
  const std::string path = ::testing::TempDir() + "/pangulu_io_test.mtx";
  ASSERT_TRUE(write_matrix_market_file(path, m).is_ok());
  Csc back;
  ASSERT_TRUE(read_matrix_market_file(path, &back).is_ok());
  EXPECT_TRUE(m.approx_equal(back, 1e-15));
  EXPECT_FALSE(read_matrix_market_file("/nonexistent/file.mtx", &back).is_ok());
}

}  // namespace
}  // namespace pangulu::io
