#include <gtest/gtest.h>

#include <limits>

#include "matgen/generators.hpp"
#include "sparse/dense.hpp"
#include "symbolic/etree.hpp"
#include "symbolic/fill.hpp"
#include "symbolic/supernodes.hpp"

namespace pangulu::symbolic {
namespace {

TEST(FillBounds, GuardsIndexArithmeticAtTheBoundaries) {
  constexpr nnz_t kMax = std::numeric_limits<nnz_t>::max();
  EXPECT_TRUE(check_fill_bounds(0, 0).is_ok());
  EXPECT_TRUE(check_fill_bounds(1000, 1000000).is_ok());
  EXPECT_EQ(check_fill_bounds(-1, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(check_fill_bounds(0, -1).code(), StatusCode::kInvalidArgument);
  // 2*nnz + n overflow: exactly at the edge passes, one past fails.
  const index_t n = 100;
  const nnz_t edge = (kMax - n) / 2;
  EXPECT_TRUE(check_fill_bounds(n, edge).is_ok());
  EXPECT_EQ(check_fill_bounds(n, edge + 1).code(), StatusCode::kOutOfRange);
  // n*n overflow needs n > 2^31.5, unreachable for int32 n — but the 2*nnz
  // guard still dominates: the largest representable nnz is rejected.
  EXPECT_EQ(check_fill_bounds(1, kMax).code(), StatusCode::kOutOfRange);
  // Entry points run the guard themselves.
  Csc tiny(2, 2);
  SymbolicResult sym;
  EXPECT_TRUE(symbolic_symmetric(tiny, &sym).is_ok());
}

/// Brute-force fill pattern by running Gaussian elimination symbolically on
/// a dense boolean matrix.
Dense brute_force_fill(const Csc& a) {
  const index_t n = a.n_cols();
  Dense d(n, n);
  for (index_t j = 0; j < n; ++j) {
    d(j, j) = 1.0;
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p)
      d(a.row_idx()[static_cast<std::size_t>(p)], j) = 1.0;
  }
  for (index_t k = 0; k < n; ++k) {
    for (index_t i = k + 1; i < n; ++i) {
      if (d(i, k) == 0.0) continue;
      for (index_t j = k + 1; j < n; ++j) {
        if (d(k, j) != 0.0) d(i, j) = 1.0;
      }
    }
  }
  return d;
}

TEST(Etree, ChainMatrixGivesChainTree) {
  // Tridiagonal: parent(v) = v+1.
  Coo coo(5, 5);
  for (index_t i = 0; i < 5; ++i) {
    coo.add(i, i, 2.0);
    if (i + 1 < 5) {
      coo.add(i + 1, i, -1.0);
      coo.add(i, i + 1, -1.0);
    }
  }
  auto parent = elimination_tree(Csc::from_coo(coo));
  for (index_t v = 0; v + 1 < 5; ++v)
    EXPECT_EQ(parent[static_cast<std::size_t>(v)], v + 1);
  EXPECT_EQ(parent[4], -1);
}

TEST(Etree, PostorderVisitsChildrenFirst) {
  Csc m = matgen::grid2d_laplacian(6, 6).symmetrized().with_full_diagonal();
  auto parent = elimination_tree(m);
  auto post = postorder(parent);
  ASSERT_EQ(post.size(), 36u);
  std::vector<index_t> position(36);
  for (std::size_t i = 0; i < post.size(); ++i)
    position[static_cast<std::size_t>(post[i])] = static_cast<index_t>(i);
  for (index_t v = 0; v < 36; ++v) {
    if (parent[static_cast<std::size_t>(v)] >= 0) {
      EXPECT_LT(position[static_cast<std::size_t>(v)],
                position[static_cast<std::size_t>(
                    parent[static_cast<std::size_t>(v)])]);
    }
  }
}

TEST(Etree, LevelsIncreaseTowardsRoot) {
  Csc m = matgen::grid2d_laplacian(5, 5).symmetrized().with_full_diagonal();
  auto parent = elimination_tree(m);
  auto level = tree_levels(parent);
  for (index_t v = 0; v < 25; ++v) {
    if (parent[static_cast<std::size_t>(v)] >= 0) {
      EXPECT_GT(level[static_cast<std::size_t>(
                    parent[static_cast<std::size_t>(v)])],
                level[static_cast<std::size_t>(v)]);
    }
  }
}

class SymbolicP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymbolicP, SymmetricFillMatchesBruteForceOnSymmetrised) {
  Csc a = matgen::random_sparse(40, 3, GetParam());
  SymbolicResult sym;
  ASSERT_TRUE(symbolic_symmetric(a, &sym).is_ok());
  Dense bf = brute_force_fill(a.symmetrized().with_full_diagonal());
  // The symmetric-pruning fill must equal the brute-force filled pattern of
  // the symmetrised matrix exactly.
  const index_t n = a.n_cols();
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const bool in_pattern = sym.filled.find(i, j) >= 0;
      EXPECT_EQ(in_pattern, bf(i, j) != 0.0)
          << "mismatch at (" << i << "," << j << ")";
    }
  }
}

TEST_P(SymbolicP, UnsymmetricFillMatchesBruteForce) {
  Csc a = matgen::random_sparse(35, 3, GetParam() + 100);
  SymbolicResult sym;
  ASSERT_TRUE(symbolic_unsymmetric(a, /*use_pruning=*/false, &sym).is_ok());
  Dense bf = brute_force_fill(a.with_full_diagonal());
  const index_t n = a.n_cols();
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      EXPECT_EQ(sym.filled.find(i, j) >= 0, bf(i, j) != 0.0)
          << "mismatch at (" << i << "," << j << ")";
    }
  }
}

TEST_P(SymbolicP, PruningDoesNotChangeTheUnsymmetricPattern) {
  Csc a = matgen::random_sparse(45, 3, GetParam() + 200);
  SymbolicResult plain, pruned;
  ASSERT_TRUE(symbolic_unsymmetric(a, false, &plain).is_ok());
  ASSERT_TRUE(symbolic_unsymmetric(a, true, &pruned).is_ok());
  EXPECT_EQ(plain.nnz_lu, pruned.nnz_lu);
  EXPECT_TRUE(plain.filled.approx_equal(pruned.filled, 0.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymbolicP, ::testing::Values(1, 2, 3, 4));

TEST(Symbolic, SymmetricPatternIsSupersetOfUnsymmetric) {
  Csc a = matgen::circuit(80, 2.0, 2.2, 9);
  SymbolicResult sym, unsym;
  ASSERT_TRUE(symbolic_symmetric(a, &sym).is_ok());
  ASSERT_TRUE(symbolic_unsymmetric(a, true, &unsym).is_ok());
  EXPECT_GE(sym.nnz_lu, unsym.nnz_lu);
  // Every unsymmetric fill entry must be covered.
  for (index_t j = 0; j < a.n_cols(); ++j) {
    for (nnz_t p = unsym.filled.col_begin(j); p < unsym.filled.col_end(j); ++p)
      EXPECT_GE(sym.filled.find(
                    unsym.filled.row_idx()[static_cast<std::size_t>(p)], j),
                0);
  }
}

TEST(Symbolic, ValuesOfAScatteredIntoFill) {
  Csc a = matgen::random_sparse(30, 3, 7);
  SymbolicResult sym;
  ASSERT_TRUE(symbolic_symmetric(a, &sym).is_ok());
  for (index_t j = 0; j < a.n_cols(); ++j) {
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
      EXPECT_DOUBLE_EQ(
          sym.filled.at(a.row_idx()[static_cast<std::size_t>(p)], j),
          a.values()[static_cast<std::size_t>(p)]);
    }
  }
  EXPECT_EQ(sym.nnz_lu, sym.filled.nnz());
}

TEST(Symbolic, FlopsMatchHandComputedTridiagonal) {
  // Tridiagonal fill has |L_k| = 1 for k < n-1: flops = (n-1)*(1 + 2).
  const index_t n = 12;
  Coo coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 2.0);
    if (i + 1 < n) {
      coo.add(i + 1, i, -1.0);
      coo.add(i, i + 1, -1.0);
    }
  }
  SymbolicResult sym;
  ASSERT_TRUE(symbolic_symmetric(Csc::from_coo(coo), &sym).is_ok());
  EXPECT_DOUBLE_EQ(factorization_flops(sym.filled), (n - 1) * 3.0);
}

TEST(Supernodes, DenseBlockDetectedAsOneSupernode) {
  const index_t n = 8;
  Csc a = matgen::random_sparse(n, n, 3, false);
  SymbolicResult sym;
  ASSERT_TRUE(symbolic_symmetric(a, &sym).is_ok());
  if (sym.filled.nnz() == static_cast<nnz_t>(n) * n) {
    auto part = detect_supernodes(sym.filled, 0, n);
    EXPECT_EQ(part.supernodes.size(), 1u);
    EXPECT_EQ(part.total_padding, 0);
  }
}

TEST(Supernodes, PartitionCoversAllColumnsExactlyOnce) {
  Csc a = matgen::grid2d_laplacian(12, 12);
  SymbolicResult sym;
  ASSERT_TRUE(symbolic_symmetric(a, &sym).is_ok());
  for (index_t relax : {0, 2, 8}) {
    auto part = detect_supernodes(sym.filled, relax, 32);
    index_t covered = 0;
    for (const auto& sn : part.supernodes) {
      EXPECT_EQ(sn.first_col, covered);
      covered += sn.n_cols;
      EXPECT_LE(sn.n_cols, 32);
    }
    EXPECT_EQ(covered, a.n_cols());
    for (index_t c = 0; c < a.n_cols(); ++c)
      EXPECT_GE(part.col_to_supernode[static_cast<std::size_t>(c)], 0);
  }
}

TEST(Supernodes, RelaxationMergesMoreButPads) {
  Csc a = matgen::circuit(150, 2.0, 2.2, 3);
  SymbolicResult sym;
  ASSERT_TRUE(symbolic_symmetric(a, &sym).is_ok());
  auto strict = detect_supernodes(sym.filled, 0, 64);
  auto relaxed = detect_supernodes(sym.filled, 8, 64);
  EXPECT_LE(relaxed.supernodes.size(), strict.supernodes.size());
  EXPECT_GE(relaxed.total_padding, strict.total_padding);
}

}  // namespace
}  // namespace pangulu::symbolic
