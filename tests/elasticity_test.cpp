// Elastic-runtime property tests: planned rank drains/adds fire at task-graph
// safe points, migrate the minimal block set, re-prove the mapping verifier,
// and leave the LU factors bitwise identical to a static-grid run; draining
// below min_ranks load-sheds with StatusCode::kResourceExhausted instead of
// deadlocking; crash/drain interleavings recover; the Young/Daly checkpoint
// cadence follows tau = sqrt(2 * C * MTBF); and incremental snapshots resume
// to the same bits as full ones from a smaller file.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/verify.hpp"
#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "io/snapshot.hpp"
#include "matgen/generators.hpp"
#include "runtime/elastic.hpp"
#include "runtime/fault.hpp"
#include "runtime/sim.hpp"
#include "solver/solver.hpp"
#include "symbolic/fill.hpp"

namespace pangulu {
namespace {

using runtime::ElasticPlan;
using runtime::FaultPlan;
using runtime::ScheduleMode;
using runtime::SimOptions;
using runtime::SimResult;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

struct Prepared {
  block::BlockMatrix bm;
  std::vector<block::Task> tasks;
  block::Mapping mapping;
};

Prepared prepare(const Csc& a, index_t block_size, rank_t ranks) {
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(a, &sym).check();
  Prepared p;
  p.bm = block::BlockMatrix::from_filled(sym.filled, block_size);
  p.tasks = block::enumerate_tasks(p.bm);
  p.mapping = block::cyclic_mapping(p.bm, block::ProcessGrid::make(ranks));
  return p;
}

bool bitwise_equal(const block::BlockMatrix& x, const block::BlockMatrix& y) {
  const Csc a = x.to_csc();
  const Csc b = y.to_csc();
  if (a.nnz() != b.nnz()) return false;
  for (nnz_t p = 0; p < a.nnz(); ++p) {
    if (a.values()[static_cast<std::size_t>(p)] !=
            b.values()[static_cast<std::size_t>(p)] ||
        a.row_idx()[static_cast<std::size_t>(p)] !=
            b.row_idx()[static_cast<std::size_t>(p)])
      return false;
  }
  return true;
}

Status run(Prepared& p, rank_t ranks, const SimOptions& base, SimResult* res) {
  SimOptions opts = base;
  opts.n_ranks = ranks;
  opts.execute_numerics = true;
  return runtime::simulate_factorization(p.bm, p.tasks, p.mapping, opts, res);
}

// ---------------------------------------------------------------------------
// ElasticPlan validation.
// ---------------------------------------------------------------------------

TEST(ElasticPlan, ValidatesStructure) {
  ElasticPlan ok;
  ok.drains.push_back({1, 10});
  EXPECT_TRUE(ok.validate(4).is_ok());
  EXPECT_TRUE(ElasticPlan{}.validate(1).is_ok());

  ElasticPlan bad_rank;
  bad_rank.drains.push_back({7, 0});
  EXPECT_EQ(bad_rank.validate(4).code(), StatusCode::kInvalidArgument);

  ElasticPlan neg_commit;
  neg_commit.adds.push_back({1, -3});
  EXPECT_EQ(neg_commit.validate(4).code(), StatusCode::kInvalidArgument);

  ElasticPlan bad_floor;
  bad_floor.min_ranks = 0;
  bad_floor.drains.push_back({1, 0});
  EXPECT_EQ(bad_floor.validate(4).code(), StatusCode::kInvalidArgument);
  bad_floor.min_ranks = 5;
  EXPECT_EQ(bad_floor.validate(4).code(), StatusCode::kInvalidArgument);
}

TEST(ElasticPlan, ValidatesChronology) {
  // Draining a rank twice: the second drain hits an inactive rank.
  ElasticPlan twice;
  twice.drains.push_back({1, 2});
  twice.drains.push_back({1, 8});
  EXPECT_EQ(twice.validate(4).code(), StatusCode::kInvalidArgument);

  // Adding a rank that is already active.
  ElasticPlan readd;
  readd.adds.push_back({1, 5});
  readd.drains.push_back({1, 2});  // drain first -> the add is legal
  EXPECT_TRUE(readd.validate(4).is_ok());
  ElasticPlan add_active;
  add_active.adds.push_back({1, 2});  // starts inactive, becomes active...
  add_active.adds.push_back({1, 8});  // ...so the second add is redundant
  EXPECT_EQ(add_active.validate(4).code(), StatusCode::kInvalidArgument);

  // A rank whose first event is an add starts the run inactive.
  ElasticPlan grow;
  grow.adds.push_back({3, 5});
  const std::vector<char> active = grow.initially_active(4);
  EXPECT_EQ(active, (std::vector<char>{1, 1, 1, 0}));
  EXPECT_TRUE(grow.validate(4).is_ok());
}

TEST(ElasticPlan, OverDrainingLoadSheds) {
  ElasticPlan plan;
  plan.min_ranks = 2;
  plan.drains.push_back({0, 2});
  plan.drains.push_back({1, 4});
  plan.drains.push_back({2, 6});
  EXPECT_EQ(plan.validate(4).code(), StatusCode::kResourceExhausted);
  plan.drains.pop_back();
  EXPECT_TRUE(plan.validate(4).is_ok());
}

// ---------------------------------------------------------------------------
// Mapping::rebalance — bounded movement.
// ---------------------------------------------------------------------------

TEST(Rebalance, DrainMovesExactlyTheDrainedBlocks) {
  Csc a = matgen::grid2d_laplacian(9, 9);
  Prepared p = prepare(a, 16, 4);
  block::Mapping before = p.mapping;
  block::Mapping m = p.mapping;
  std::vector<char> alive(4, 1);
  alive[1] = 0;
  std::vector<nnz_t> moved_pos;
  const nnz_t moved = m.rebalance(1, -1, alive, &moved_pos);

  nnz_t owned_before = 0;
  for (std::size_t pos = 0; pos < before.owner.size(); ++pos)
    if (before.owner[pos] == 1) ++owned_before;
  ASSERT_GT(owned_before, 0);
  EXPECT_EQ(moved, owned_before);
  EXPECT_EQ(static_cast<nnz_t>(moved_pos.size()), moved);

  for (std::size_t pos = 0; pos < m.owner.size(); ++pos) {
    EXPECT_NE(m.owner[pos], 1) << "drained rank still owns block " << pos;
    if (before.owner[pos] != 1) {
      EXPECT_EQ(m.owner[pos], before.owner[pos])
          << "block " << pos << " moved between two live ranks";
    }
  }
  // Moved list is the drained rank's blocks, ascending.
  for (std::size_t i = 0; i < moved_pos.size(); ++i) {
    EXPECT_EQ(before.owner[static_cast<std::size_t>(moved_pos[i])], 1);
    if (i > 0) {
      EXPECT_LT(moved_pos[i - 1], moved_pos[i]);
    }
  }
}

TEST(Rebalance, AddStealsUpToTheFairShare) {
  Csc a = matgen::grid2d_laplacian(9, 9);
  Prepared p = prepare(a, 16, 4);
  block::Mapping m = p.mapping;
  std::vector<char> alive(4, 1);
  alive[3] = 0;
  ASSERT_GE(m.rebalance(3, -1, alive), 0);  // start with rank 3 empty
  block::Mapping before = m;

  alive[3] = 1;
  std::vector<nnz_t> moved_pos;
  const nnz_t moved = m.rebalance(3, +1, alive, &moved_pos);
  const auto total = static_cast<nnz_t>(m.owner.size());
  const nnz_t fair = total / 4;

  nnz_t newcomer = 0;
  for (std::size_t pos = 0; pos < m.owner.size(); ++pos) {
    if (m.owner[pos] == 3) ++newcomer;
    // Only blocks handed to the newcomer change owner.
    if (m.owner[pos] != 3)
      EXPECT_EQ(m.owner[pos], before.owner[pos]);
    else
      EXPECT_NE(before.owner[pos], 3);
  }
  EXPECT_EQ(moved, newcomer);
  EXPECT_EQ(static_cast<nnz_t>(moved_pos.size()), moved);
  EXPECT_LE(newcomer, fair);
  EXPECT_GE(newcomer, fair > 0 ? fair - 1 : 0);
  // Bounded movement: never more than one fair share.
  EXPECT_LE(moved, (total + 3) / 4);
}

TEST(Rebalance, DrainWithNoSurvivorFails) {
  Csc a = matgen::grid2d_laplacian(6, 6);
  Prepared p = prepare(a, 16, 1);
  std::vector<char> alive(1, 0);
  EXPECT_EQ(p.mapping.rebalance(0, -1, alive), -1);
}

// ---------------------------------------------------------------------------
// verify_rebalance — post-rebalance invariants (I6).
// ---------------------------------------------------------------------------

TEST(VerifyRebalance, ProvesALegitimateDrainAndRejectsCorruption) {
  Csc a = matgen::grid2d_laplacian(9, 9);
  Prepared p = prepare(a, 16, 4);
  block::Mapping before = p.mapping;
  block::Mapping after = p.mapping;
  std::vector<char> alive(4, 1);
  alive[1] = 0;
  ASSERT_GE(after.rebalance(1, -1, alive), 0);

  EXPECT_TRUE(analysis::verify_rebalance(p.bm, p.tasks, before, after, 1, -1,
                                         alive, analysis::VerifyLevel::kFull)
                  .is_ok());

  // Hand-corruption 1: a block left on the drained rank (totality breach).
  block::Mapping orphaned = after;
  orphaned.owner[0] = 1;
  EXPECT_EQ(analysis::verify_rebalance(p.bm, p.tasks, before, orphaned, 1, -1,
                                       alive, analysis::VerifyLevel::kFull)
                .code(),
            StatusCode::kInvariantViolation);

  // Hand-corruption 2: a block moved between two live ranks (movement not
  // minimal: the diff contains a move whose source is not the drained rank).
  block::Mapping shuffled = after;
  for (std::size_t pos = 0; pos < shuffled.owner.size(); ++pos) {
    if (before.owner[pos] == 0) {
      shuffled.owner[pos] = 2;
      break;
    }
  }
  EXPECT_EQ(analysis::verify_rebalance(p.bm, p.tasks, before, shuffled, 1, -1,
                                       alive, analysis::VerifyLevel::kFull)
                .code(),
            StatusCode::kInvariantViolation);

  // Hand-corruption 3: owner rank out of range.
  block::Mapping wild = after;
  wild.owner[0] = 9;
  EXPECT_EQ(analysis::verify_rebalance(p.bm, p.tasks, before, wild, 1, -1,
                                       alive, analysis::VerifyLevel::kFull)
                .code(),
            StatusCode::kInvariantViolation);
}

// ---------------------------------------------------------------------------
// Elastic runs produce bitwise-identical factors.
// ---------------------------------------------------------------------------

TEST(Elasticity, DrainsAndGrowsAreBitwiseIdentical) {
  const rank_t ranks = 4;
  Csc a = matgen::grid2d_laplacian(9, 9);
  for (ScheduleMode mode : {ScheduleMode::kSyncFree, ScheduleMode::kLevelSet}) {
    Prepared clean = prepare(a, 16, ranks);
    SimOptions base;
    base.schedule = mode;
    SimResult clean_res;
    ASSERT_TRUE(run(clean, ranks, base, &clean_res).is_ok());
    const auto nt = static_cast<index_t>(clean.tasks.size());
    ASSERT_GT(nt, 8);

    struct Scenario {
      const char* name;
      ElasticPlan plan;
      std::int64_t drains;
      std::int64_t adds;
    };
    std::vector<Scenario> scenarios;
    {
      Scenario s{"drain-at-0", {}, 1, 0};
      s.plan.drains.push_back({1, 0});
      scenarios.push_back(s);
    }
    {
      Scenario s{"drain-mid", {}, 1, 0};
      s.plan.drains.push_back({2, nt / 2});
      scenarios.push_back(s);
    }
    {
      Scenario s{"drain-then-readd", {}, 1, 1};
      s.plan.drains.push_back({2, nt / 3});
      s.plan.adds.push_back({2, (2 * nt) / 3});
      scenarios.push_back(s);
    }
    {
      Scenario s{"grow", {}, 0, 1};
      s.plan.adds.push_back({3, nt / 4});  // rank 3 starts inactive
      scenarios.push_back(s);
    }
    {
      Scenario s{"drain-past-end", {}, 1, 0};
      s.plan.drains.push_back({0, nt + 100});
      scenarios.push_back(s);
    }

    for (const Scenario& sc : scenarios) {
      Prepared p = prepare(a, 16, ranks);
      SimOptions opts = base;
      opts.elastic = sc.plan;
      opts.verify_level = analysis::VerifyLevel::kFull;
      SimResult res;
      Status s = run(p, ranks, opts, &res);
      ASSERT_TRUE(s.is_ok()) << sc.name << ": " << s.message();
      EXPECT_TRUE(bitwise_equal(clean.bm, p.bm)) << sc.name;
      EXPECT_EQ(res.ranks_drained, sc.drains) << sc.name;
      EXPECT_EQ(res.ranks_added, sc.adds) << sc.name;
      if (sc.drains > 0) {
        EXPECT_GT(res.migrated_blocks, 0) << sc.name;
        EXPECT_GE(res.migration_time, 0.0) << sc.name;
      }
    }
  }
}

TEST(Elasticity, ZeroEventPlanChangesNothing) {
  const rank_t ranks = 4;
  Csc a = matgen::grid2d_laplacian(8, 8);
  Prepared clean = prepare(a, 16, ranks);
  SimResult r0;
  ASSERT_TRUE(run(clean, ranks, SimOptions{}, &r0).is_ok());

  Prepared p = prepare(a, 16, ranks);
  SimOptions opts;  // elastic plan defaults to empty
  SimResult res;
  ASSERT_TRUE(run(p, ranks, opts, &res).is_ok());
  EXPECT_TRUE(bitwise_equal(clean.bm, p.bm));
  EXPECT_EQ(res.makespan, r0.makespan);
  EXPECT_EQ(res.ranks_drained, 0);
  EXPECT_EQ(res.ranks_added, 0);
  EXPECT_EQ(res.migrated_blocks, 0);
  EXPECT_EQ(res.migration_time, 0.0);
}

// ---------------------------------------------------------------------------
// Fault-during-elasticity interleavings.
// ---------------------------------------------------------------------------

TEST(Elasticity, DrainOfACrashedRankIsANoOp) {
  const rank_t ranks = 4;
  Csc a = matgen::grid2d_laplacian(9, 9);
  Prepared clean = prepare(a, 16, ranks);
  SimResult r0;
  ASSERT_TRUE(run(clean, ranks, SimOptions{}, &r0).is_ok());
  const auto nt = static_cast<index_t>(clean.tasks.size());

  Prepared p = prepare(a, 16, ranks);
  SimOptions opts;
  opts.device.crash_detect_s = 0;  // recovery fires at the crash instant
  opts.faults.crashes.push_back({1, 0.0});
  opts.elastic.drains.push_back({1, nt / 2});
  opts.verify_level = analysis::VerifyLevel::kFull;
  SimResult res;
  Status s = run(p, ranks, opts, &res);
  ASSERT_TRUE(s.is_ok()) << s.message();
  EXPECT_TRUE(bitwise_equal(clean.bm, p.bm));
  EXPECT_EQ(res.rank_crashes, 1);
  // The planned drain found a corpse: recovery already owns its blocks.
  EXPECT_EQ(res.ranks_drained, 0);
}

TEST(Elasticity, CrashOfADrainedRankIsHarmless) {
  const rank_t ranks = 4;
  Csc a = matgen::grid2d_laplacian(9, 9);
  Prepared clean = prepare(a, 16, ranks);
  SimResult r0;
  ASSERT_TRUE(run(clean, ranks, SimOptions{}, &r0).is_ok());

  Prepared p = prepare(a, 16, ranks);
  SimOptions opts;
  opts.elastic.drains.push_back({1, 1});  // drained almost immediately
  // The crash lands long after the drain quiesced the rank.
  opts.faults.crashes.push_back({1, r0.makespan * 1e3 + 1.0});
  opts.verify_level = analysis::VerifyLevel::kFull;
  SimResult res;
  Status s = run(p, ranks, opts, &res);
  ASSERT_TRUE(s.is_ok()) << s.message();
  EXPECT_TRUE(bitwise_equal(clean.bm, p.bm));
  EXPECT_EQ(res.ranks_drained, 1);
  EXPECT_EQ(res.rank_crashes, 0);  // nothing left to crash
}

TEST(Elasticity, CrashPlusDrainBelowMinRanksLoadSheds) {
  const rank_t ranks = 4;
  Csc a = matgen::grid2d_laplacian(9, 9);
  Prepared p = prepare(a, 16, ranks);
  const auto nt = static_cast<index_t>(p.tasks.size());

  SimOptions opts;
  opts.device.crash_detect_s = 0;
  opts.faults.crashes.push_back({1, 0.0});  // unplanned: 4 -> 3 live
  opts.elastic.min_ranks = 3;
  opts.elastic.drains.push_back({2, nt / 2});  // planned: 3 -> 2 < min_ranks
  // Statically the plan is fine (4 - 1 = 3 >= 3); only the crash makes the
  // drain breach the floor, so this exercises the dynamic check.
  ASSERT_TRUE(opts.elastic.validate(ranks).is_ok());
  SimResult res;
  Status s = run(p, ranks, opts, &res);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.message();
}

// ---------------------------------------------------------------------------
// Solver-level integration.
// ---------------------------------------------------------------------------

TEST(Elasticity, SolverElasticPlanSolvesIdentically) {
  Csc a = matgen::circuit(150, 2.0, 2.2, 7);
  const index_t n = a.n_cols();
  std::vector<value_t> b(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    b[static_cast<std::size_t>(i)] = std::sin(static_cast<double>(i) + 1);

  solver::Options base;
  base.n_ranks = 4;
  solver::Solver statik;
  ASSERT_TRUE(statik.factorize(a, base).is_ok());
  std::vector<value_t> x0(static_cast<std::size_t>(n));
  ASSERT_TRUE(statik.solve(b, x0).is_ok());
  const auto nt = static_cast<index_t>(statik.stats().n_tasks);

  solver::Options eopts = base;
  eopts.elastic_plan.drains.push_back({1, nt / 3});
  eopts.elastic_plan.adds.push_back({1, (2 * nt) / 3});
  solver::Solver elastic;
  Status s = elastic.factorize(a, eopts);
  ASSERT_TRUE(s.is_ok()) << s.message();
  EXPECT_EQ(elastic.stats().sim.ranks_drained, 1);
  EXPECT_EQ(elastic.stats().sim.ranks_added, 1);
  EXPECT_GT(elastic.stats().sim.migrated_blocks, 0);

  std::vector<value_t> x1(static_cast<std::size_t>(n));
  ASSERT_TRUE(elastic.solve(b, x1).is_ok());
  for (index_t i = 0; i < n; ++i)
    ASSERT_EQ(x0[static_cast<std::size_t>(i)], x1[static_cast<std::size_t>(i)])
        << "row " << i;
}

TEST(Elasticity, SolverRejectsOverDrainingPlans) {
  Csc a = matgen::grid2d_laplacian(8, 8);
  solver::Options opts;
  opts.n_ranks = 2;
  opts.elastic_plan.min_ranks = 2;
  opts.elastic_plan.drains.push_back({0, 4});
  solver::Solver s;
  EXPECT_EQ(s.factorize(a, opts).code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Young/Daly checkpoint cadence.
// ---------------------------------------------------------------------------

TEST(YoungDaly, IntervalFollowsTheFormula) {
  // tau = sqrt(2 * 5 * 1e4) = sqrt(1e5) ~ 316.23 s; at 0.01 s per task that
  // is 31623 tasks.
  EXPECT_EQ(runtime::young_daly_interval_tasks(1e4, 5.0, 0.01, 100000), 31623);
  // Clamped to the task count from above...
  EXPECT_EQ(runtime::young_daly_interval_tasks(1e4, 5.0, 0.01, 1000), 1000);
  // ...and to one task from below (very expensive tasks).
  EXPECT_EQ(runtime::young_daly_interval_tasks(1.0, 1e-6, 100.0, 1000), 1);
}

TEST(YoungDaly, DegenerateInputsFallBack) {
  EXPECT_EQ(runtime::young_daly_interval_tasks(0, 5.0, 0.01, 1000), 0);
  EXPECT_EQ(runtime::young_daly_interval_tasks(1e4, 0, 0.01, 1000), 0);
  EXPECT_EQ(runtime::young_daly_interval_tasks(1e4, 5.0, 0, 1000), 0);
  EXPECT_EQ(runtime::young_daly_interval_tasks(1e4, 5.0, 0.01, 0), 0);
}

TEST(YoungDaly, MtbfDrivesTheSolverCadence) {
  Csc a = matgen::grid2d_laplacian(8, 8);
  const std::string path = temp_path("snap_yd.bin");
  solver::Options opts;
  opts.n_ranks = 2;
  opts.checkpoint_path = path;
  // A very short MTBF against cheap virtual snapshots drives the interval
  // down to its 1-task floor: a checkpoint after every commit but the last.
  opts.mtbf_seconds = 1e-12;
  solver::Solver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  const auto nt = static_cast<std::int64_t>(s.stats().n_tasks);
  EXPECT_EQ(s.stats().sim.checkpoints_written, nt - 1);
  std::remove(path.c_str());

  // A huge MTBF yields a near-free-failure regime: the optimum exceeds the
  // task count, clamps to nt, and the run ends before a checkpoint is due.
  const std::string path2 = temp_path("snap_yd2.bin");
  solver::Options lazy = opts;
  lazy.checkpoint_path = path2;
  lazy.mtbf_seconds = 1e18;
  solver::Solver s2;
  ASSERT_TRUE(s2.factorize(a, lazy).is_ok());
  EXPECT_EQ(s2.stats().sim.checkpoints_written, 0);
  std::remove(path2.c_str());
}

// ---------------------------------------------------------------------------
// Incremental snapshots.
// ---------------------------------------------------------------------------

std::size_t file_size(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  return f.good() ? static_cast<std::size_t>(f.tellg()) : 0;
}

TEST(IncrementalSnapshot, SmallerFileSameBits) {
  Csc a = matgen::circuit(150, 2.0, 2.2, 13);
  const index_t n = a.n_cols();
  std::vector<value_t> b(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    b[static_cast<std::size_t>(i)] = std::cos(static_cast<double>(i) + 1);

  solver::Options base;
  base.n_ranks = 2;
  solver::Solver clean;
  ASSERT_TRUE(clean.factorize(a, base).is_ok());
  std::vector<value_t> x_clean(static_cast<std::size_t>(n));
  ASSERT_TRUE(clean.solve(b, x_clean).is_ok());
  const auto nt = static_cast<index_t>(clean.stats().n_tasks);
  const index_t kill = nt / 4;
  ASSERT_GT(kill, 2);

  const std::string inc_path = temp_path("snap_inc.bin");
  const std::string full_path = temp_path("snap_full.bin");
  for (bool incremental : {true, false}) {
    const std::string& path = incremental ? inc_path : full_path;
    solver::Options kopts = base;
    kopts.checkpoint_path = path;
    kopts.checkpoint_interval_tasks = std::max<index_t>(1, nt / 16);
    kopts.incremental_snapshots = incremental;
    kopts.fault_plan.kill_after_task = kill;
    solver::Solver victim;
    ASSERT_EQ(victim.factorize(a, kopts).code(), StatusCode::kUnavailable);

    io::Snapshot snap;
    ASSERT_TRUE(io::read_snapshot_file(path, &snap).is_ok());
    EXPECT_EQ(snap.meta.incremental, incremental ? 1 : 0);
    if (incremental) {
      EXPECT_FALSE(snap.dirty_pos.empty());
      for (std::size_t i = 1; i < snap.dirty_pos.size(); ++i)
        EXPECT_LT(snap.dirty_pos[i - 1], snap.dirty_pos[i]);
    } else {
      EXPECT_TRUE(snap.dirty_pos.empty());
    }

    solver::Solver revived;
    Status s = revived.resume_from(path);
    ASSERT_TRUE(s.is_ok()) << s.message();
    std::vector<value_t> x_res(static_cast<std::size_t>(n));
    ASSERT_TRUE(revived.solve(b, x_res).is_ok());
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(x_clean[static_cast<std::size_t>(i)],
                x_res[static_cast<std::size_t>(i)])
          << (incremental ? "incremental" : "full") << " row " << i;
  }
  // An early-kill dirty set is a fraction of the blocks, so the incremental
  // file must be strictly smaller than the full one.
  EXPECT_LT(file_size(inc_path), file_size(full_path));
  std::remove(inc_path.c_str());
  std::remove(full_path.c_str());
}

TEST(IncrementalSnapshot, TamperedDirtyListFailsThePrecondition) {
  Csc a = matgen::grid2d_laplacian(8, 8);
  const std::string path = temp_path("snap_dirty_tamper.bin");
  solver::Options opts;
  opts.n_ranks = 2;
  opts.checkpoint_path = path;
  opts.checkpoint_interval_tasks = 3;
  opts.fault_plan.kill_after_task = 6;
  solver::Solver victim;
  ASSERT_EQ(victim.factorize(a, opts).code(), StatusCode::kUnavailable);

  io::Snapshot snap;
  ASSERT_TRUE(io::read_snapshot_file(path, &snap).is_ok());
  ASSERT_EQ(snap.meta.incremental, 1);
  ASSERT_FALSE(snap.dirty_pos.empty());
  // Claim a different (still ascending, still nnz-consistent) dirty set by
  // dropping the last entry and its values: the reader's self-consistency
  // passes, but the cross-check against the recomputed task prefix must not.
  const auto last = static_cast<std::size_t>(snap.dirty_pos.back());
  const auto last_nnz = static_cast<std::size_t>(snap.block_nnz[last]);
  snap.dirty_pos.pop_back();
  snap.block_values.resize(snap.block_values.size() - last_nnz);
  ASSERT_TRUE(io::write_snapshot_file(path, snap).is_ok());
  solver::Solver revived;
  EXPECT_EQ(revived.resume_from(path).code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// StatusCode::to_string coverage.
// ---------------------------------------------------------------------------

TEST(StatusCodes, EveryCodeHasADistinctName) {
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kOutOfRange,   StatusCode::kFailedPrecondition,
      StatusCode::kNumericalError, StatusCode::kIoError,
      StatusCode::kInternal,     StatusCode::kUnavailable,
      StatusCode::kInvariantViolation, StatusCode::kDataCorruption,
      StatusCode::kResourceExhausted};
  std::vector<std::string> names;
  for (StatusCode c : codes) {
    const std::string name = to_string(c);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown");
    for (const std::string& prev : names) EXPECT_NE(name, prev);
    names.push_back(name);
  }
  EXPECT_EQ(std::string(to_string(StatusCode::kResourceExhausted)),
            "resource_exhausted");
  EXPECT_EQ(std::string(to_string(static_cast<StatusCode>(255))), "unknown");
}

}  // namespace
}  // namespace pangulu
