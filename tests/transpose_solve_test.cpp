#include <gtest/gtest.h>

#include <cmath>

#include "matgen/generators.hpp"
#include "solver/solver.hpp"
#include "sparse/ops.hpp"

namespace pangulu::solver {
namespace {

value_t transpose_residual(const Csc& a, std::span<const value_t> x,
                           std::span<const value_t> b) {
  Csc at = a.transpose();
  return relative_residual(at, x, b);
}

class TransposeP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransposeP, SolvesTransposedSystem) {
  Csc a = matgen::random_sparse(120, 4, GetParam());
  Solver s;
  ASSERT_TRUE(s.factorize(a, {}).is_ok());
  std::vector<value_t> x_true(static_cast<std::size_t>(a.n_cols()));
  for (index_t i = 0; i < a.n_cols(); ++i)
    x_true[static_cast<std::size_t>(i)] = std::cos(0.3 * i);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  a.transpose().spmv(x_true, b);

  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
  ASSERT_TRUE(s.solve_transpose(b, x).is_ok());
  EXPECT_LT(transpose_residual(a, x, b), 1e-10);
  for (index_t i = 0; i < a.n_cols(); ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransposeP, ::testing::Values(1, 2, 3, 4));

TEST(TransposeSolve, UnsymmetricMatrixDistinguishesDirections) {
  Csc a = matgen::cage_style(150, 3, 7);
  Solver s;
  ASSERT_TRUE(s.factorize(a, {}).is_ok());
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()), 1.0);
  std::vector<value_t> x_fwd(static_cast<std::size_t>(a.n_cols()));
  std::vector<value_t> x_tr(static_cast<std::size_t>(a.n_cols()));
  ASSERT_TRUE(s.solve(b, x_fwd).is_ok());
  ASSERT_TRUE(s.solve_transpose(b, x_tr).is_ok());
  // On a genuinely unsymmetric matrix the two solutions must differ.
  value_t diff = 0;
  for (std::size_t i = 0; i < x_fwd.size(); ++i)
    diff = std::max(diff, std::abs(x_fwd[i] - x_tr[i]));
  EXPECT_GT(diff, 1e-8);
  EXPECT_LT(transpose_residual(a, x_tr, b), 1e-10);
  EXPECT_LT(relative_residual(a, x_fwd, b), 1e-10);
}

TEST(TransposeSolve, WorksWithMultiRankFactors) {
  Csc a = matgen::circuit(200, 2.0, 2.2, 42);
  Options opts;
  opts.n_ranks = 4;
  Solver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()), 2.0);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
  ASSERT_TRUE(s.solve_transpose(b, x).is_ok());
  EXPECT_LT(transpose_residual(a, x, b), 1e-9);
}

TEST(TransposeSolve, BeforeFactorizeFails) {
  Solver s;
  std::vector<value_t> b(4, 1.0), x(4);
  EXPECT_FALSE(s.solve_transpose(b, x).is_ok());
}

/// Exact 1-norm of the inverse on small matrices, via n solves.
value_t exact_inv_norm1(Solver& s, index_t n) {
  value_t best = 0;
  std::vector<value_t> e(static_cast<std::size_t>(n), 0.0);
  std::vector<value_t> col(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    e[static_cast<std::size_t>(j)] = 1.0;
    s.solve(e, col).check();
    e[static_cast<std::size_t>(j)] = 0.0;
    value_t sum = 0;
    for (value_t v : col) sum += std::abs(v);
    best = std::max(best, sum);
  }
  return best;
}

class CondestP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CondestP, WithinFactorOfExactCondition) {
  Csc a = matgen::random_sparse(60, 3, GetParam());
  Solver s;
  ASSERT_TRUE(s.factorize(a, {}).is_ok());
  value_t est = 0;
  ASSERT_TRUE(s.condest(&est).is_ok());
  const value_t exact = norm1(a) * exact_inv_norm1(s, a.n_cols());
  EXPECT_GE(est, exact * 0.1) << "estimator should rarely miss by >10x";
  EXPECT_LE(est, exact * 1.0001) << "Hager's estimate is a lower bound";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CondestP, ::testing::Values(5, 6, 7, 8, 9));

TEST(Condest, IdentityHasConditionOne) {
  Coo coo(8, 8);
  for (index_t i = 0; i < 8; ++i) coo.add(i, i, 1.0);
  Solver s;
  ASSERT_TRUE(s.factorize(Csc::from_coo(coo), {}).is_ok());
  value_t est = 0;
  ASSERT_TRUE(s.condest(&est).is_ok());
  EXPECT_NEAR(est, 1.0, 1e-10);
}

TEST(Condest, DetectsIllConditioning) {
  // Diagonal matrix with a huge dynamic range.
  Coo coo(10, 10);
  for (index_t i = 0; i < 10; ++i) coo.add(i, i, i == 0 ? 1e-9 : 1.0);
  Solver s;
  Options opts;
  opts.reorder.apply_scaling = false;  // keep the raw conditioning visible
  opts.reorder.use_mc64 = false;
  ASSERT_TRUE(s.factorize(Csc::from_coo(coo), opts).is_ok());
  value_t est = 0;
  ASSERT_TRUE(s.condest(&est).is_ok());
  EXPECT_GT(est, 1e8);
}

}  // namespace
}  // namespace pangulu::solver
