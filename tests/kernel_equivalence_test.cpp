// Property tests of the numeric hot-path overhaul: every addressing variant
// of every kernel family — including the merge family (SSSSM C_V3/G_V3,
// panel G_V4) — must match the dense references across a size/density
// sweep; the autotuner must produce well-formed monotone thresholds whose
// selections always name an equivalence-tested variant; thresholds must
// round-trip through save/load exactly; and the solver must honour (or
// reject) Options::thresholds_file.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "kernels/calibrate.hpp"
#include "kernels/getrf.hpp"
#include "kernels/gessm.hpp"
#include "kernels/selector.hpp"
#include "kernels/ssssm.hpp"
#include "kernels/tstrf.hpp"
#include "matgen/generators.hpp"
#include "solver/solver.hpp"
#include "test_util.hpp"

namespace pangulu::kernels {
namespace {

using test::add_product_pattern;
using test::close_lower_solve_pattern;
using test::close_lu_pattern;
using test::close_upper_solve_pattern;

constexpr GetrfVariant kGetrfAll[] = {GetrfVariant::kCV1, GetrfVariant::kGV1,
                                      GetrfVariant::kGV2};
constexpr PanelVariant kPanelAll[] = {PanelVariant::kCV1, PanelVariant::kCV2,
                                      PanelVariant::kGV1, PanelVariant::kGV2,
                                      PanelVariant::kGV3, PanelVariant::kGV4};
constexpr SsssmVariant kSsssmAll[] = {SsssmVariant::kCV1, SsssmVariant::kCV2,
                                      SsssmVariant::kCV3, SsssmVariant::kGV1,
                                      SsssmVariant::kGV2, SsssmVariant::kGV3};

TEST(Equivalence, EveryVariantOfEveryFamilyAcrossTheSweep) {
  Workspace ws;
  for (index_t n : {8, 40, 72}) {
    for (double density : {0.05, 0.15, 0.35}) {
      for (std::uint64_t seed : {101ull, 202ull}) {
        SCOPED_TRACE("n=" + std::to_string(n) +
                     " d=" + std::to_string(density) +
                     " seed=" + std::to_string(seed));
        const auto per_col = std::max<index_t>(
            2, static_cast<index_t>(density * static_cast<double>(n)));
        Csc base = close_lu_pattern(matgen::random_sparse(n, per_col, seed));

        Csc getrf_ref = base;
        ASSERT_TRUE(getrf_reference(getrf_ref).is_ok());
        for (GetrfVariant v : kGetrfAll) {
          Csc a = base;
          ASSERT_TRUE(getrf(v, a, ws, nullptr).is_ok()) << to_string(v);
          EXPECT_TRUE(a.approx_equal(getrf_ref, 1e-10)) << to_string(v);
        }

        Csc diag = base;
        ASSERT_TRUE(getrf(GetrfVariant::kCV1, diag, ws, nullptr).is_ok());

        Csc bg = close_lower_solve_pattern(
            diag, matgen::random_rect(n, n / 2 + 1, density, seed + 10));
        Csc gessm_ref = bg;
        ASSERT_TRUE(gessm_reference(diag, gessm_ref).is_ok());
        for (PanelVariant v : kPanelAll) {
          Csc b = bg;
          ASSERT_TRUE(gessm(v, diag, b, ws).is_ok()) << to_string(v);
          EXPECT_TRUE(b.approx_equal(gessm_ref, 1e-10))
              << "GESSM " << to_string(v);
        }

        Csc bt = close_upper_solve_pattern(
            diag, matgen::random_rect(n / 2 + 1, n, density, seed + 20));
        Csc tstrf_ref = bt;
        ASSERT_TRUE(tstrf_reference(diag, tstrf_ref).is_ok());
        for (PanelVariant v : kPanelAll) {
          Csc b = bt;
          ASSERT_TRUE(tstrf(v, diag, b, ws).is_ok()) << to_string(v);
          EXPECT_TRUE(b.approx_equal(tstrf_ref, 1e-9))
              << "TSTRF " << to_string(v);
        }

        Csc sa = matgen::random_rect(n, n, density, seed + 30);
        Csc sb = matgen::random_rect(n, n, density, seed + 31);
        Csc sc = add_product_pattern(
            sa, sb, matgen::random_rect(n, n, density, seed + 32));
        Csc ssssm_ref = sc;
        ASSERT_TRUE(ssssm_reference(sa, sb, ssssm_ref).is_ok());
        for (SsssmVariant v : kSsssmAll) {
          Csc c = sc;
          ASSERT_TRUE(ssssm(v, sa, sb, c, ws).is_ok()) << to_string(v);
          EXPECT_TRUE(c.approx_equal(ssssm_ref, 1e-10))
              << "SSSSM " << to_string(v);
        }
      }
    }
  }
}

// A tiny grid keeps the test fast; the fitted cuts are noisy, but the
// well-formedness properties below must hold regardless of timing noise.
SelectorThresholds tiny_autotune(AutotuneReport* report = nullptr) {
  AutotuneOptions opt;
  opt.sizes = {16, 48};
  opt.densities = {0.05, 0.2};
  opt.repeats = 1;
  SelectorThresholds t;
  autotune_thresholds(opt, &t, report).check();
  return t;
}

TEST(Autotune, ProducesMonotonePositiveChains) {
  AutotuneReport report;
  const SelectorThresholds t = tiny_autotune(&report);
  const double chains[][5] = {
      {t.getrf_cpu_nnz, t.getrf_gv1_nnz, 0, 0, 0},
      {t.gessm_cv1_nnz, t.gessm_cv2_nnz, t.gessm_gv1_nnz, t.gessm_gv4_nnz,
       t.gessm_gv2_nnz},
      {t.tstrf_cv1_nnz, t.tstrf_cv2_nnz, t.tstrf_gv1_nnz, t.tstrf_gv4_nnz,
       t.tstrf_gv2_nnz},
      {t.ssssm_cv2_flops, t.ssssm_cv3_flops, t.ssssm_cv1_flops,
       t.ssssm_gv1_flops, 0},
  };
  const int lens[] = {2, 5, 5, 4};
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < lens[c]; ++i) {
      EXPECT_GE(chains[c][i], 1.0) << "chain " << c << " cut " << i;
      if (i > 0)
        EXPECT_GE(chains[c][i], chains[c][i - 1])
            << "chain " << c << " cut " << i << " not monotone";
    }
  }
  // 2 + 5 + 5 + 4 fitted boundaries.
  EXPECT_EQ(report.entries.size(), 16u);
  for (const auto& e : report.entries) EXPECT_GT(e.samples, 0) << e.boundary;
}

TEST(Autotune, TunedSelectorOnlyReturnsEquivalentVariants) {
  const SelectorThresholds t = tiny_autotune();
  Workspace ws;

  // Fixed validation problems; whatever variant the tuned tree picks for any
  // probed metric must reproduce the references on them.
  Csc diag = close_lu_pattern(matgen::random_sparse(48, 5, 77));
  Csc getrf_ref = diag;
  ASSERT_TRUE(getrf_reference(getrf_ref).is_ok());
  Csc factored = diag;
  ASSERT_TRUE(getrf(GetrfVariant::kCV1, factored, ws, nullptr).is_ok());
  Csc bg = close_lower_solve_pattern(factored,
                                     matgen::random_rect(48, 24, 0.2, 78));
  Csc gessm_ref = bg;
  ASSERT_TRUE(gessm_reference(factored, gessm_ref).is_ok());
  Csc bt = close_upper_solve_pattern(factored,
                                     matgen::random_rect(24, 48, 0.2, 79));
  Csc tstrf_ref = bt;
  ASSERT_TRUE(tstrf_reference(factored, tstrf_ref).is_ok());
  Csc sa = matgen::random_rect(48, 48, 0.15, 80);
  Csc sb = matgen::random_rect(48, 48, 0.15, 81);
  Csc sc = add_product_pattern(sa, sb, matgen::random_rect(48, 48, 0.1, 82));
  Csc ssssm_ref = sc;
  ASSERT_TRUE(ssssm_reference(sa, sb, ssssm_ref).is_ok());

  for (double metric : {1.0, 50.0, 5e3, 8e3, 1.2e4, 2e4, 1e6, 1e8, 1e10}) {
    const auto nz = static_cast<nnz_t>(metric);
    {
      Csc a = diag;
      const GetrfVariant v = select_getrf(nz, t);
      ASSERT_TRUE(getrf(v, a, ws, nullptr).is_ok()) << to_string(v);
      EXPECT_TRUE(a.approx_equal(getrf_ref, 1e-10)) << to_string(v);
    }
    {
      Csc b = bg;
      const PanelVariant v = select_gessm(nz, 100, t);
      ASSERT_TRUE(gessm(v, factored, b, ws).is_ok()) << to_string(v);
      EXPECT_TRUE(b.approx_equal(gessm_ref, 1e-10)) << to_string(v);
    }
    {
      Csc b = bt;
      const PanelVariant v = select_tstrf(nz, 100, t);
      ASSERT_TRUE(tstrf(v, factored, b, ws).is_ok()) << to_string(v);
      EXPECT_TRUE(b.approx_equal(tstrf_ref, 1e-9)) << to_string(v);
    }
    {
      Csc c = sc;
      const SsssmVariant v = select_ssssm(metric, t);
      ASSERT_TRUE(ssssm(v, sa, sb, c, ws).is_ok()) << to_string(v);
      EXPECT_TRUE(c.approx_equal(ssssm_ref, 1e-10)) << to_string(v);
    }
  }
}

TEST(Autotune, RejectsBadArguments) {
  SelectorThresholds t;
  EXPECT_FALSE(autotune_thresholds({}, nullptr).is_ok());
  AutotuneOptions empty;
  empty.sizes.clear();
  EXPECT_FALSE(autotune_thresholds(empty, &t).is_ok());
  AutotuneOptions tiny;
  tiny.sizes = {2};
  EXPECT_FALSE(autotune_thresholds(tiny, &t).is_ok());
}

TEST(Thresholds, SaveLoadRoundTripsExactly) {
  SelectorThresholds t;
  t.getrf_cpu_nnz = 1234.5678901234567;
  t.gessm_gv4_nnz = 3.0e4;
  t.tstrf_gv4_nnz = 2.5e4;
  t.ssssm_cv3_flops = 9.87e5;
  const std::string path = ::testing::TempDir() + "pangulu_thresholds.txt";
  save_thresholds(path, t).check();
  SelectorThresholds loaded;
  load_thresholds(path, &loaded).check();
  EXPECT_EQ(loaded.getrf_cpu_nnz, t.getrf_cpu_nnz);
  EXPECT_EQ(loaded.getrf_gv1_nnz, t.getrf_gv1_nnz);
  EXPECT_EQ(loaded.panel_huge_diag_nnz, t.panel_huge_diag_nnz);
  EXPECT_EQ(loaded.gessm_cv1_nnz, t.gessm_cv1_nnz);
  EXPECT_EQ(loaded.gessm_cv2_nnz, t.gessm_cv2_nnz);
  EXPECT_EQ(loaded.gessm_gv1_nnz, t.gessm_gv1_nnz);
  EXPECT_EQ(loaded.gessm_gv4_nnz, t.gessm_gv4_nnz);
  EXPECT_EQ(loaded.gessm_gv2_nnz, t.gessm_gv2_nnz);
  EXPECT_EQ(loaded.tstrf_cv1_nnz, t.tstrf_cv1_nnz);
  EXPECT_EQ(loaded.tstrf_cv2_nnz, t.tstrf_cv2_nnz);
  EXPECT_EQ(loaded.tstrf_gv1_nnz, t.tstrf_gv1_nnz);
  EXPECT_EQ(loaded.tstrf_gv4_nnz, t.tstrf_gv4_nnz);
  EXPECT_EQ(loaded.tstrf_gv2_nnz, t.tstrf_gv2_nnz);
  EXPECT_EQ(loaded.ssssm_cv2_flops, t.ssssm_cv2_flops);
  EXPECT_EQ(loaded.ssssm_cv3_flops, t.ssssm_cv3_flops);
  EXPECT_EQ(loaded.ssssm_cv1_flops, t.ssssm_cv1_flops);
  EXPECT_EQ(loaded.ssssm_gv1_flops, t.ssssm_gv1_flops);
  std::remove(path.c_str());
}

TEST(Thresholds, LoadRejectsMissingFileAndUnknownKeys) {
  SelectorThresholds t;
  EXPECT_FALSE(load_thresholds("/nonexistent/pangulu.thresholds", &t).is_ok());
  const std::string path = ::testing::TempDir() + "pangulu_bad_thresholds.txt";
  {
    std::ofstream out(path);
    out << "# comment line is fine\n";
    out << "getrf_cpu_nnz 5000\n";
    out << "no_such_threshold 1\n";
  }
  EXPECT_FALSE(load_thresholds(path, &t).is_ok());
  // The known key before the bad line was still applied (load is not
  // transactional — the caller discards `t` on error).
  std::remove(path.c_str());
}

TEST(Thresholds, SolverLoadsAndRejectsThresholdsFile) {
  Csc a = matgen::grid2d_laplacian(8, 8);
  const std::string path = ::testing::TempDir() + "pangulu_solver_thr.txt";
  SelectorThresholds t;
  t.ssssm_cv3_flops = 1e5;
  save_thresholds(path, t).check();

  solver::Solver s;
  solver::Options opts;
  opts.thresholds_file = path;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  std::vector<value_t> b(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()), 0.0);
  solver::SolveStats ss;
  ASSERT_TRUE(s.solve(b, x, &ss).is_ok());
  EXPECT_LT(ss.final_residual, 1e-10);

  opts.thresholds_file = "/nonexistent/pangulu.thresholds";
  EXPECT_FALSE(s.factorize(a, opts).is_ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pangulu::kernels
