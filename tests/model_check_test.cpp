// Model-checker property tests: the explicit-state checker exhaustively
// explores small-grid protocol interleavings (sleep-set POR visits every
// reachable state with fewer transitions), classifies fault-free and
// fault-budgeted runs as safe, and — under each seeded protocol mutation —
// produces a minimal counterexample whose forced-schedule replay reproduces
// the identical violation in the DES. Random FaultPlan/ElasticPlan DES
// executions agree with the checker's reachable-and-safe verdict.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/model_check.hpp"
#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "matgen/generators.hpp"
#include "runtime/elastic.hpp"
#include "runtime/fault.hpp"
#include "runtime/sim.hpp"
#include "symbolic/fill.hpp"

namespace pangulu {
namespace {

using analysis::Counterexample;
using analysis::ModelCheckResult;
using analysis::ModelOptions;
using analysis::ProtocolMutations;
using analysis::ProtoEvent;
using analysis::ProtoEventKind;
using analysis::ProtoProperty;
using analysis::ReplayResult;
using runtime::ElasticPlan;
using runtime::FaultPlan;
using runtime::SimOptions;
using runtime::SimResult;

struct Prepared {
  block::BlockMatrix bm;
  std::vector<block::Task> tasks;
  block::Mapping mapping;
};

Prepared prepare(const Csc& a, index_t block_size, rank_t ranks) {
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(a, &sym).check();
  Prepared p;
  p.bm = block::BlockMatrix::from_filled(sym.filled, block_size);
  p.tasks = block::enumerate_tasks(p.bm);
  p.mapping = block::cyclic_mapping(p.bm, block::ProcessGrid::make(ranks));
  return p;
}

/// The acceptance-criteria grid: >= 3x3 blocks on two ranks.
Prepared grid3x3(rank_t ranks = 2) {
  return prepare(matgen::grid2d_laplacian(3, 3), 3, ranks);
}

bool bitwise_equal(const block::BlockMatrix& x, const block::BlockMatrix& y) {
  const Csc a = x.to_csc();
  const Csc b = y.to_csc();
  if (a.nnz() != b.nnz()) return false;
  for (nnz_t p = 0; p < a.nnz(); ++p) {
    if (a.values()[static_cast<std::size_t>(p)] !=
            b.values()[static_cast<std::size_t>(p)] ||
        a.row_idx()[static_cast<std::size_t>(p)] !=
            b.row_idx()[static_cast<std::size_t>(p)])
      return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Event/property plumbing.
// ---------------------------------------------------------------------------

TEST(ProtoEvent, ToStringCoversEveryKind) {
  const ProtoEventKind kinds[] = {
      ProtoEventKind::kCommit,     ProtoEventKind::kDeliver,
      ProtoEventKind::kRetransmit, ProtoEventKind::kDrain,
      ProtoEventKind::kAdd,        ProtoEventKind::kCheckpoint,
      ProtoEventKind::kPublish,    ProtoEventKind::kDrop,
      ProtoEventKind::kDuplicate,  ProtoEventKind::kCrash,
  };
  for (ProtoEventKind k : kinds) {
    EXPECT_STRNE(analysis::to_string(k), "unknown");
    ProtoEvent e;
    e.kind = k;
    e.task = 1;
    e.edge = 2;
    e.rank = 0;
    EXPECT_FALSE(analysis::to_string(e).empty());
  }
  const ProtoProperty props[] = {
      ProtoProperty::kNone,
      ProtoProperty::kCounterNonNegative,
      ProtoProperty::kAtMostOnce,
      ProtoProperty::kPrematureExecute,
      ProtoProperty::kMappingTotality,
      ProtoProperty::kMinRanksFloor,
      ProtoProperty::kCheckpointDurability,
      ProtoProperty::kOrphanMessage,
      ProtoProperty::kDeadlock,
  };
  for (ProtoProperty p : props)
    EXPECT_STRNE(analysis::to_string(p), "unknown");
}

TEST(ProtoEvent, OrderingAndEquality) {
  ProtoEvent a{ProtoEventKind::kCommit, 1, -1, -1};
  ProtoEvent b{ProtoEventKind::kCommit, 2, -1, -1};
  ProtoEvent c{ProtoEventKind::kDeliver, -1, 0, -1};
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(analysis::proto_event_less(a, b));
  EXPECT_TRUE(analysis::proto_event_less(a, c));
  EXPECT_FALSE(analysis::proto_event_less(c, a));
}

TEST(ModelCheck, RejectsMalformedInputs) {
  Prepared p = grid3x3();
  ModelCheckResult res;
  ModelOptions mo;
  block::Mapping bad = p.mapping;
  bad.owner.pop_back();
  EXPECT_EQ(analysis::model_check(p.bm, p.tasks, bad, mo, &res).code(),
            StatusCode::kInvalidArgument);
  ModelOptions neg;
  neg.max_drops = -1;
  EXPECT_EQ(analysis::model_check(p.bm, p.tasks, p.mapping, neg, &res).code(),
            StatusCode::kInvalidArgument);
  ModelOptions floor;
  floor.min_ranks = 5;
  EXPECT_EQ(
      analysis::model_check(p.bm, p.tasks, p.mapping, floor, &res).code(),
      StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Exhaustive exploration of healthy configurations.
// ---------------------------------------------------------------------------

TEST(ModelCheck, FaultFreeGridIsSafeAndComplete) {
  Prepared p = grid3x3();
  ModelOptions mo;
  ModelCheckResult res;
  ASSERT_TRUE(analysis::model_check(p.bm, p.tasks, p.mapping, mo, &res).is_ok());
  EXPECT_FALSE(res.violation);
  EXPECT_TRUE(res.complete);
  EXPECT_GT(res.stats.states, 1u);
  EXPECT_GT(res.stats.terminal_states, 0u);
}

TEST(ModelCheck, SleepSetsPreserveStatesAndPruneTransitions) {
  Prepared p = grid3x3();
  ModelOptions por;
  por.max_drops = 1;
  ModelOptions naive = por;
  naive.partial_order_reduction = false;
  ModelCheckResult rp, rn;
  ASSERT_TRUE(
      analysis::model_check(p.bm, p.tasks, p.mapping, por, &rp).is_ok());
  ASSERT_TRUE(
      analysis::model_check(p.bm, p.tasks, p.mapping, naive, &rn).is_ok());
  ASSERT_TRUE(rp.complete);
  ASSERT_TRUE(rn.complete);
  // The reduction prunes transitions, never states: every reachable state
  // is still visited, so per-state safety checking loses nothing.
  EXPECT_EQ(rp.stats.states, rn.stats.states);
  EXPECT_EQ(rp.stats.naive_transitions, rn.stats.transitions);
  EXPECT_LT(rp.stats.transitions, rn.stats.transitions);
  EXPECT_GT(rp.stats.reduction_factor(), 1.0);
  EXPECT_GT(rp.stats.sleep_pruned, 0u);
}

// The acceptance-criteria configuration: a 3x3-block grid on two ranks with
// a message-fault budget (one drop + one late duplicate) AND a planned
// elastic drain, explored exhaustively within the state budget.
TEST(ModelCheck, ExhaustiveWithFaultAndElasticEvent) {
  Prepared p = grid3x3();
  ElasticPlan plan;
  plan.drains.push_back({1, 2});
  ModelOptions mo;
  mo.elastic = runtime::flatten_elastic(plan);
  mo.min_ranks = plan.min_ranks;
  mo.max_drops = 1;
  mo.max_duplicates = 1;
  ModelCheckResult res;
  ASSERT_TRUE(
      analysis::model_check(p.bm, p.tasks, p.mapping, mo, &res).is_ok());
  EXPECT_TRUE(res.complete);
  EXPECT_FALSE(res.violation);
  EXPECT_LT(res.stats.states, mo.max_states);
  EXPECT_GT(res.stats.reduction_factor(), 1.0);
  RecordProperty("states", static_cast<int>(res.stats.states));
  RecordProperty("transitions", static_cast<int>(res.stats.transitions));
  RecordProperty("reduction_x100",
                 static_cast<int>(res.stats.reduction_factor() * 100));
}

TEST(ModelCheck, CrashBudgetExploredSafely) {
  Prepared p = prepare(matgen::grid2d_laplacian(3, 3), 3, 3);
  ModelOptions mo;
  mo.max_crashes = 1;
  ModelCheckResult res;
  ASSERT_TRUE(
      analysis::model_check(p.bm, p.tasks, p.mapping, mo, &res).is_ok());
  EXPECT_TRUE(res.complete);
  EXPECT_FALSE(res.violation);
}

TEST(ModelCheck, StateBudgetExhaustionIsInconclusiveNotWrong) {
  Prepared p = grid3x3();
  ModelOptions mo;
  mo.max_drops = 1;
  mo.max_states = 16;
  ModelCheckResult res;
  EXPECT_EQ(analysis::model_check(p.bm, p.tasks, p.mapping, mo, &res).code(),
            StatusCode::kResourceExhausted);
  EXPECT_FALSE(res.complete);
  EXPECT_FALSE(res.violation);
}

// ---------------------------------------------------------------------------
// Forced-schedule replay through the DES.
// ---------------------------------------------------------------------------

TEST(ForcedSchedule, CompleteScheduleReplaysToIdenticalFactors) {
  Prepared base = grid3x3();
  Prepared forced = grid3x3();
  SimOptions opts;
  opts.n_ranks = 2;
  SimResult ref;
  ASSERT_TRUE(runtime::simulate_factorization(base.bm, base.tasks,
                                              base.mapping, opts, &ref)
                  .is_ok());

  ModelOptions mo;
  SimOptions fopts;
  fopts.n_ranks = 2;
  fopts.forced_schedule = analysis::sample_complete_schedule(
      forced.bm, forced.tasks, forced.mapping, mo);
  ASSERT_FALSE(fopts.forced_schedule.empty());
  SimResult res;
  ASSERT_TRUE(runtime::simulate_factorization(forced.bm, forced.tasks,
                                              forced.mapping, fopts, &res)
                  .is_ok());
  EXPECT_TRUE(bitwise_equal(base.bm, forced.bm));
  EXPECT_GT(res.messages, 0);
  EXPECT_GT(res.makespan, 0.0);
}

TEST(ForcedSchedule, InfeasibleAndIncompleteSchedulesAreRejected) {
  Prepared p = grid3x3();
  ModelOptions mo;
  const std::vector<ProtoEvent> full = analysis::sample_complete_schedule(
      p.bm, p.tasks, p.mapping, mo);

  // A later event hoisted to the front is inadmissible there.
  SimOptions bad;
  bad.n_ranks = 2;
  bad.forced_schedule = {full.back()};
  SimResult res;
  EXPECT_EQ(runtime::simulate_factorization(p.bm, p.tasks, p.mapping, bad,
                                            &res)
                .code(),
            StatusCode::kInvalidArgument);

  // A strict prefix leaves tasks uncommitted.
  SimOptions prefix;
  prefix.n_ranks = 2;
  prefix.forced_schedule.assign(full.begin(),
                                full.begin() + static_cast<std::ptrdiff_t>(
                                                   full.size() / 2));
  EXPECT_EQ(runtime::simulate_factorization(p.bm, p.tasks, p.mapping, prefix,
                                            &res)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ForcedSchedule, HandForgedDoubleCommitViolatesAtMostOnce) {
  Prepared p = grid3x3();
  ModelOptions mo;
  std::vector<ProtoEvent> sched = analysis::sample_complete_schedule(
      p.bm, p.tasks, p.mapping, mo);
  ASSERT_EQ(sched.front().kind, ProtoEventKind::kCommit);
  sched.insert(sched.begin() + 1, sched.front());  // commit task 0 twice

  const ReplayResult rr =
      analysis::replay_schedule(p.bm, p.tasks, p.mapping, mo, sched);
  EXPECT_TRUE(rr.feasible);
  EXPECT_EQ(rr.property, ProtoProperty::kAtMostOnce);

  SimOptions opts;
  opts.n_ranks = 2;
  opts.forced_schedule = sched;
  SimResult res;
  Status s =
      runtime::simulate_factorization(p.bm, p.tasks, p.mapping, opts, &res);
  EXPECT_EQ(s.code(), StatusCode::kInvariantViolation);
  EXPECT_NE(s.message().find("[at-most-once]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Mutation soundness: every seeded protocol bug is found, the
// counterexample is 1-minimal, and its forced replay reproduces the same
// violation in the DES.
// ---------------------------------------------------------------------------

struct MutationCase {
  const char* name;
  ProtocolMutations mutations;
  ProtoProperty expect;
  int drops = 0;
  int dups = 0;
  int crashes = 0;
  int ckpts = 0;
  bool drain = false;
  rank_t min_ranks = 1;
};

std::vector<MutationCase> mutation_cases() {
  std::vector<MutationCase> cases;
  {
    MutationCase c{"skip_ack_dedup", {}, ProtoProperty::kCounterNonNegative};
    c.mutations.skip_ack_dedup = true;
    c.dups = 1;
    cases.push_back(c);
  }
  {
    MutationCase c{"counter_off_by_one", {}, ProtoProperty::kPrematureExecute};
    c.mutations.counter_off_by_one = true;
    cases.push_back(c);
  }
  {
    MutationCase c{"skip_rebalance_proof", {}, ProtoProperty::kMappingTotality};
    c.mutations.skip_rebalance_proof = true;
    c.drain = true;
    cases.push_back(c);
  }
  {
    MutationCase c{"commit_before_publish", {},
                   ProtoProperty::kCheckpointDurability};
    c.mutations.commit_before_publish = true;
    c.ckpts = 1;
    cases.push_back(c);
  }
  {
    MutationCase c{"skip_retransmit", {}, ProtoProperty::kOrphanMessage};
    c.mutations.skip_retransmit = true;
    c.drops = 1;
    cases.push_back(c);
  }
  {
    MutationCase c{"drain_ignores_min_ranks", {},
                   ProtoProperty::kMinRanksFloor};
    c.mutations.drain_ignores_min_ranks = true;
    c.drain = true;
    c.min_ranks = 2;  // any drain of the 2-rank grid dips below the floor
    cases.push_back(c);
  }
  {
    MutationCase c{"crash_remap_drops_block", {},
                   ProtoProperty::kMappingTotality};
    c.mutations.crash_remap_drops_block = true;
    c.crashes = 1;
    cases.push_back(c);
  }
  return cases;
}

ElasticPlan case_plan(const MutationCase& c) {
  ElasticPlan plan;
  plan.min_ranks = c.min_ranks;
  if (c.drain) plan.drains.push_back({1, 1});
  return plan;
}

ModelOptions case_options(const MutationCase& c, bool mutated) {
  const ElasticPlan plan = case_plan(c);
  ModelOptions mo;
  mo.elastic = runtime::flatten_elastic(plan);
  mo.min_ranks = plan.min_ranks;
  mo.max_drops = c.drops;
  mo.max_duplicates = c.dups;
  mo.max_crashes = c.crashes;
  mo.max_checkpoints = c.ckpts;
  if (mutated) mo.mutations = c.mutations;
  return mo;
}

TEST(MutationSoundness, EverySeededBugFoundMinimisedAndReplayable) {
  const std::vector<MutationCase> cases = mutation_cases();
  ASSERT_GE(cases.size(), 6u);  // >= 6 distinct mutations (AC)
  for (const MutationCase& c : cases) {
    SCOPED_TRACE(c.name);
    Prepared p = grid3x3();

    // Baseline soundness: the identical configuration without the mutation
    // is exhaustively clean — the checker only fires on the seeded bug.
    ModelCheckResult clean;
    ASSERT_TRUE(analysis::model_check(p.bm, p.tasks, p.mapping,
                                      case_options(c, false), &clean)
                    .is_ok());
    EXPECT_FALSE(clean.violation);
    EXPECT_TRUE(clean.complete);

    // The mutated protocol is caught, with the expected property.
    const ModelOptions mo = case_options(c, true);
    ModelCheckResult res;
    ASSERT_TRUE(
        analysis::model_check(p.bm, p.tasks, p.mapping, mo, &res).is_ok());
    ASSERT_TRUE(res.violation);
    EXPECT_EQ(res.cex.property, c.expect);
    ASSERT_FALSE(res.cex.schedule.empty());
    EXPECT_FALSE(res.cex.detail.empty());

    // The counterexample replays to the same violation in the model...
    const ReplayResult rr = analysis::replay_schedule(
        p.bm, p.tasks, p.mapping, mo, res.cex.schedule);
    EXPECT_TRUE(rr.feasible);
    EXPECT_EQ(rr.property, c.expect);

    // ...is 1-minimal: removing any single event loses the violation...
    for (std::size_t i = 0; i < res.cex.schedule.size(); ++i) {
      std::vector<ProtoEvent> cand = res.cex.schedule;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      const ReplayResult sub =
          analysis::replay_schedule(p.bm, p.tasks, p.mapping, mo, cand);
      EXPECT_FALSE(sub.feasible && sub.property == c.expect)
          << "schedule not minimal: event " << i << " ("
          << analysis::to_string(res.cex.schedule[i]) << ") is removable";
    }

    // ...and SimOptions::forced_schedule reproduces it in the DES with the
    // violated property named in the diagnosis.
    SimOptions opts;
    opts.n_ranks = 2;
    opts.elastic = case_plan(c);
    opts.protocol_mutations = c.mutations;
    opts.forced_schedule = res.cex.schedule;
    SimResult sim;
    Status s = runtime::simulate_factorization(p.bm, p.tasks, p.mapping,
                                               opts, &sim);
    ASSERT_EQ(s.code(), StatusCode::kInvariantViolation);
    EXPECT_NE(s.message().find(std::string("[") +
                               analysis::to_string(c.expect) + "]"),
              std::string::npos)
        << s.message();
  }
}

// ---------------------------------------------------------------------------
// Checker/DES agreement on random fault + elastic plans.
// ---------------------------------------------------------------------------

TEST(CheckerDesAgreement, RandomFaultAndElasticPlansLandSafe) {
  // Fault-free reference factors.
  Prepared ref = grid3x3();
  SimOptions base;
  base.n_ranks = 2;
  SimResult ref_res;
  ASSERT_TRUE(runtime::simulate_factorization(ref.bm, ref.tasks, ref.mapping,
                                              base, &ref_res)
                  .is_ok());

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Prepared p = grid3x3();
    ElasticPlan plan;
    if (seed % 2 == 0) plan.drains.push_back({1, 3});

    // The DES under a random recoverable message-fault plan + the elastic
    // plan reaches completion with bitwise-identical factors...
    SimOptions opts;
    opts.n_ranks = 2;
    opts.faults = FaultPlan::random(seed, 2, 1e-3, 0.4,
                                    /*with_crash=*/false);
    opts.elastic = plan;
    SimResult res;
    ASSERT_TRUE(runtime::simulate_factorization(p.bm, p.tasks, p.mapping,
                                                opts, &res)
                    .is_ok());
    EXPECT_TRUE(bitwise_equal(ref.bm, p.bm));

    // ...and the checker proves every state reachable under the matching
    // budgets safe, so the DES cannot have visited an unsafe one.
    ModelOptions mo;
    mo.elastic = runtime::flatten_elastic(plan);
    mo.min_ranks = plan.min_ranks;
    mo.max_drops = 1;
    mo.max_duplicates = 1;
    ModelCheckResult check;
    ASSERT_TRUE(
        analysis::model_check(p.bm, p.tasks, p.mapping, mo, &check).is_ok());
    EXPECT_TRUE(check.complete);
    EXPECT_FALSE(check.violation);
  }
}

TEST(CheckerDesAgreement, CrashRecoveryAgreesOnThreeRanks) {
  Prepared ref = prepare(matgen::grid2d_laplacian(3, 3), 3, 3);
  SimOptions base;
  base.n_ranks = 3;
  SimResult ref_res;
  ASSERT_TRUE(runtime::simulate_factorization(ref.bm, ref.tasks, ref.mapping,
                                              base, &ref_res)
                  .is_ok());

  Prepared p = prepare(matgen::grid2d_laplacian(3, 3), 3, 3);
  SimOptions opts;
  opts.n_ranks = 3;
  opts.faults = FaultPlan::random(7, 3, 1e-3, 0.4, /*with_crash=*/true);
  SimResult res;
  ASSERT_TRUE(
      runtime::simulate_factorization(p.bm, p.tasks, p.mapping, opts, &res)
          .is_ok());
  EXPECT_TRUE(bitwise_equal(ref.bm, p.bm));

  ModelOptions mo;
  mo.max_crashes = 1;
  mo.max_drops = 1;
  ModelCheckResult check;
  ASSERT_TRUE(
      analysis::model_check(p.bm, p.tasks, p.mapping, mo, &check).is_ok());
  EXPECT_TRUE(check.complete);
  EXPECT_FALSE(check.violation);
}

}  // namespace
}  // namespace pangulu
