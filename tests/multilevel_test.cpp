#include <gtest/gtest.h>

#include <numeric>

#include "matgen/generators.hpp"
#include "ordering/multilevel.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/ops.hpp"
#include "symbolic/col_counts.hpp"

namespace pangulu::ordering {
namespace {

std::int64_t brute_cut(const Graph& g, const std::vector<char>& side) {
  std::int64_t cut = 0;
  for (index_t v = 0; v < g.n; ++v) {
    for (nnz_t p = g.ptr[static_cast<std::size_t>(v)];
         p < g.ptr[static_cast<std::size_t>(v) + 1]; ++p) {
      const index_t u = g.adj[static_cast<std::size_t>(p)];
      if (u > v &&
          side[static_cast<std::size_t>(u)] != side[static_cast<std::size_t>(v)])
        ++cut;
    }
  }
  return cut;
}

TEST(Multilevel, GridBisectionIsBalancedAndNearOptimal) {
  // A 16x16 grid has an optimal bisection cut of 16 (one grid line).
  Csc m = matgen::grid2d_laplacian(16, 16);
  Graph g = Graph::from_matrix(m);
  Bisection b = multilevel_bisect(g);
  ASSERT_EQ(b.side.size(), 256u);
  EXPECT_EQ(b.weight0 + b.weight1, 256);
  EXPECT_GT(b.weight0, 256 / 4) << "side 0 too small";
  EXPECT_GT(b.weight1, 256 / 4) << "side 1 too small";
  EXPECT_EQ(b.edge_cut, brute_cut(g, b.side));
  EXPECT_LE(b.edge_cut, 3 * 16) << "cut should be within 3x of optimal";
}

TEST(Multilevel, PathGraphCutOfOne) {
  const index_t n = 200;
  Coo coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 2.0);
    if (i + 1 < n) {
      coo.add(i + 1, i, -1.0);
      coo.add(i, i + 1, -1.0);
    }
  }
  Graph g = Graph::from_matrix(Csc::from_coo(coo));
  Bisection b = multilevel_bisect(g);
  EXPECT_LE(b.edge_cut, 4) << "a path should split with a tiny cut";
  EXPECT_GT(b.weight0, n / 4);
  EXPECT_GT(b.weight1, n / 4);
}

TEST(Multilevel, TinyGraphs) {
  for (index_t n : {1, 2, 3}) {
    Coo coo(n, n);
    for (index_t i = 0; i < n; ++i) {
      coo.add(i, i, 1.0);
      if (i + 1 < n) {
        coo.add(i + 1, i, 1.0);
        coo.add(i, i + 1, 1.0);
      }
    }
    Graph g = Graph::from_matrix(Csc::from_coo(coo));
    Bisection b = multilevel_bisect(g);
    EXPECT_EQ(b.side.size(), static_cast<std::size_t>(n));
    if (n >= 2) {
      EXPECT_GT(b.weight0, 0);
      EXPECT_GT(b.weight1, 0);
    }
  }
}

TEST(Multilevel, SeparatorCoversEveryCutEdge) {
  Csc m = matgen::circuit(300, 2.0, 2.2, 13);
  Graph g = Graph::from_matrix(m);
  Bisection b = multilevel_bisect(g);
  auto sep = separator_from_cut(g, b);
  std::vector<char> in_sep(static_cast<std::size_t>(g.n), 0);
  for (index_t v : sep) in_sep[static_cast<std::size_t>(v)] = 1;
  for (index_t v = 0; v < g.n; ++v) {
    for (nnz_t p = g.ptr[static_cast<std::size_t>(v)];
         p < g.ptr[static_cast<std::size_t>(v) + 1]; ++p) {
      const index_t u = g.adj[static_cast<std::size_t>(p)];
      if (b.side[static_cast<std::size_t>(u)] !=
          b.side[static_cast<std::size_t>(v)]) {
        EXPECT_TRUE(in_sep[static_cast<std::size_t>(u)] ||
                    in_sep[static_cast<std::size_t>(v)])
            << "uncovered cut edge (" << v << "," << u << ")";
      }
    }
  }
}

TEST(Multilevel, NdWithMultilevelBeatsBfsOnGrids) {
  Csc m = matgen::grid2d_laplacian(28, 28);
  Graph g = Graph::from_matrix(m);
  NdOptions bfs_opts;
  bfs_opts.use_multilevel = false;
  NdOptions ml_opts;
  ml_opts.use_multilevel = true;
  auto p_bfs = nested_dissection(g, bfs_opts);
  auto p_ml = nested_dissection(g, ml_opts);
  EXPECT_TRUE(is_permutation(p_bfs));
  EXPECT_TRUE(is_permutation(p_ml));
  const nnz_t fill_bfs = symbolic::estimate_fill(m.permuted(p_bfs, p_bfs));
  const nnz_t fill_ml = symbolic::estimate_fill(m.permuted(p_ml, p_ml));
  EXPECT_LE(fill_ml, static_cast<nnz_t>(1.15 * fill_bfs))
      << "multilevel separators must be competitive with BFS level sets";
}

TEST(Multilevel, NdStillValidOnIrregularGraphs) {
  for (const char* name : {"ASIC_680k", "cage12", "Si87H76"}) {
    SCOPED_TRACE(name);
    Csc m = matgen::paper_matrix(name, 0.2);
    Graph g = Graph::from_matrix(m);
    auto perm = nested_dissection(g, {});
    EXPECT_TRUE(is_permutation(perm));
  }
}

}  // namespace
}  // namespace pangulu::ordering
