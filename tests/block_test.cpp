#include <gtest/gtest.h>

#include <limits>

#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "matgen/generators.hpp"
#include "symbolic/fill.hpp"

namespace pangulu::block {
namespace {

Csc make_filled(index_t grid_edge) {
  Csc a = matgen::grid2d_laplacian(grid_edge, grid_edge);
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(a, &sym).check();
  return std::move(sym.filled);
}

TEST(BlockingBounds, GuardsIndexArithmeticAtTheBoundaries) {
  constexpr index_t kMaxIdx = std::numeric_limits<index_t>::max();
  EXPECT_TRUE(check_blocking_bounds(100, 16, 10000).is_ok());
  EXPECT_EQ(check_blocking_bounds(-1, 16, 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(check_blocking_bounds(10, 0, 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(check_blocking_bounds(10, 16, -1).code(),
            StatusCode::kInvalidArgument);
  // ceil-divide overflow: n + b - 1 past the 32-bit edge.
  EXPECT_EQ(check_blocking_bounds(kMaxIdx, 2, 0).code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(check_blocking_bounds(kMaxIdx, 1, 0).is_ok());
  EXPECT_TRUE(check_blocking_bounds(kMaxIdx - 1, 2, 0).is_ok());
  // nb*nb overflow: block size 1 on a huge order makes the dense block grid
  // itself unrepresentable in 64 bits only for nb > 2^31.5 — for int32 n the
  // square always fits, so the guard passes and documents the bound.
  EXPECT_TRUE(check_blocking_bounds(1 << 20, 1, 1 << 30).is_ok());
}

TEST(BlockGrid, IndexingMath) {
  BlockGrid g(100, 16);
  EXPECT_EQ(g.nb, 7);
  EXPECT_EQ(g.block_of(0), 0);
  EXPECT_EQ(g.block_of(15), 0);
  EXPECT_EQ(g.block_of(16), 1);
  EXPECT_EQ(g.offset_of(17), 1);
  EXPECT_EQ(g.block_dim(6), 4);  // 100 - 6*16
  EXPECT_EQ(g.block_start(2), 32);
}

TEST(BlockGrid, ChooseBlockSizeScalesWithDensity) {
  index_t sparse_b = choose_block_size(10000, 50000);    // ~5 per row
  index_t dense_b = choose_block_size(10000, 10000000);  // ~1000 per row
  EXPECT_LT(sparse_b, dense_b);
  EXPECT_GE(sparse_b, 16);
  EXPECT_LE(dense_b, 256);
  // Tiny matrix: keep at least min_blocks blocks.
  EXPECT_LE(choose_block_size(64, 4096, 8), 8);
}

class BlockMatrixP : public ::testing::TestWithParam<index_t> {};

TEST_P(BlockMatrixP, RoundTripsThroughBlocks) {
  Csc filled = make_filled(10);
  BlockMatrix bm = BlockMatrix::from_filled(filled, GetParam());
  EXPECT_EQ(bm.total_nnz(), filled.nnz());
  Csc back = bm.to_csc();
  EXPECT_TRUE(back.approx_equal(filled, 0.0));
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, BlockMatrixP,
                         ::testing::Values<index_t>(1, 7, 16, 64, 1000));

TEST(BlockMatrix, FindBlockAndRowView) {
  Csc filled = make_filled(8);
  BlockMatrix bm = BlockMatrix::from_filled(filled, 16);
  for (index_t bj = 0; bj < bm.nb(); ++bj) {
    for (nnz_t p = bm.col_begin(bj); p < bm.col_end(bj); ++p) {
      EXPECT_EQ(bm.find_block(bm.block_row(p), bj), p);
      EXPECT_EQ(bm.block_col_of(p), bj);
    }
  }
  EXPECT_EQ(bm.find_block(bm.nb() - 1, 0) >= 0 ||
                bm.find_block(bm.nb() - 1, 0) == -1,
            true);
  // Row view covers exactly the same blocks.
  nnz_t seen = 0;
  for (index_t bi = 0; bi < bm.nb(); ++bi) {
    for (nnz_t rp = bm.row_begin(bi); rp < bm.row_end(bi); ++rp) {
      EXPECT_EQ(bm.block_row_of(bm.row_block_pos(rp)), bi);
      EXPECT_EQ(bm.block_col_of(bm.row_block_pos(rp)), bm.row_block_col(rp));
      ++seen;
    }
  }
  EXPECT_EQ(seen, bm.n_blocks());
}

TEST(Tasks, EnumerationHasOneGetrfPerStepAndValidDeps) {
  Csc filled = make_filled(9);
  BlockMatrix bm = BlockMatrix::from_filled(filled, 12);
  auto tasks = enumerate_tasks(bm);
  std::vector<int> getrf_count(static_cast<std::size_t>(bm.nb()), 0);
  for (const auto& t : tasks) {
    EXPECT_GE(t.weight, 0.0);
    EXPECT_GE(t.target, 0);
    switch (t.kind) {
      case TaskKind::kGetrf:
        EXPECT_EQ(t.bi, t.k);
        EXPECT_EQ(t.bj, t.k);
        getrf_count[static_cast<std::size_t>(t.k)]++;
        break;
      case TaskKind::kGessm:
        EXPECT_EQ(t.bi, t.k);
        EXPECT_GT(t.bj, t.k);
        EXPECT_GE(t.src_a, 0);
        break;
      case TaskKind::kTstrf:
        EXPECT_EQ(t.bj, t.k);
        EXPECT_GT(t.bi, t.k);
        break;
      case TaskKind::kSsssm:
        EXPECT_GT(t.bi, t.k);
        EXPECT_GT(t.bj, t.k);
        EXPECT_GE(t.src_a, 0);
        EXPECT_GE(t.src_b, 0);
        EXPECT_GT(t.weight, 0.0);
        break;
    }
  }
  for (index_t k = 0; k < bm.nb(); ++k)
    EXPECT_EQ(getrf_count[static_cast<std::size_t>(k)], 1);
}

TEST(Tasks, SyncFreeArrayCountsIncomingUpdates) {
  Csc filled = make_filled(9);
  BlockMatrix bm = BlockMatrix::from_filled(filled, 12);
  auto tasks = enumerate_tasks(bm);
  auto arr = sync_free_array(bm, tasks);
  // Recount manually.
  std::vector<index_t> manual(static_cast<std::size_t>(bm.n_blocks()), 0);
  for (const auto& t : tasks) {
    if (t.kind != TaskKind::kGetrf) manual[static_cast<std::size_t>(t.target)]++;
  }
  EXPECT_EQ(arr, manual);
  // The very first diagonal block has no incoming work.
  EXPECT_EQ(arr[static_cast<std::size_t>(bm.find_block(0, 0))], 0);
}

TEST(ProcessGrid, NearSquareFactorisation) {
  EXPECT_EQ(ProcessGrid::make(1).size(), 1);
  auto g4 = ProcessGrid::make(4);
  EXPECT_EQ(g4.pr, 2);
  EXPECT_EQ(g4.pc, 2);
  auto g12 = ProcessGrid::make(12);
  EXPECT_EQ(g12.pr * g12.pc, 12);
  EXPECT_LE(g12.pr, g12.pc);
  auto g7 = ProcessGrid::make(7);
  EXPECT_EQ(g7.pr, 1);
  EXPECT_EQ(g7.pc, 7);
}

TEST(Mapping, CyclicCoversAllRanksOnBigGrids) {
  Csc filled = make_filled(12);
  BlockMatrix bm = BlockMatrix::from_filled(filled, 8);
  auto grid = ProcessGrid::make(4);
  Mapping m = cyclic_mapping(bm, grid);
  ASSERT_EQ(m.owner.size(), static_cast<std::size_t>(bm.n_blocks()));
  std::vector<int> hit(4, 0);
  for (rank_t r : m.owner) {
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 4);
    hit[static_cast<std::size_t>(r)]++;
  }
  for (int h : hit) EXPECT_GT(h, 0);
}

TEST(Mapping, BalancedMappingStaysValidAndHelps) {
  Csc filled = make_filled(14);
  BlockMatrix bm = BlockMatrix::from_filled(filled, 8);
  auto tasks = enumerate_tasks(bm);
  auto grid = ProcessGrid::make(4);
  Mapping cyc = cyclic_mapping(bm, grid);
  BalanceStats stats;
  Mapping bal = balanced_mapping(bm, tasks, grid, cyc, &stats);
  ASSERT_EQ(bal.owner.size(), cyc.owner.size());
  for (rank_t r : bal.owner) {
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 4);
  }
  // The balancer must not make the maximum rank weight worse.
  EXPECT_LE(stats.max_weight_after, stats.max_weight_before * 1.0 + 1e-9);
  // Totals conserved: the same work is just redistributed.
  auto w_cyc = rank_weights(tasks, cyc);
  auto w_bal = rank_weights(tasks, bal);
  double t0 = 0, t1 = 0;
  for (double w : w_cyc) t0 += w;
  for (double w : w_bal) t1 += w;
  EXPECT_NEAR(t0, t1, 1e-6 * t0);
}

TEST(Mapping, SingleRankIsNoOp) {
  Csc filled = make_filled(6);
  BlockMatrix bm = BlockMatrix::from_filled(filled, 8);
  auto tasks = enumerate_tasks(bm);
  auto grid = ProcessGrid::make(1);
  Mapping cyc = cyclic_mapping(bm, grid);
  Mapping bal = balanced_mapping(bm, tasks, grid, cyc, nullptr);
  EXPECT_EQ(bal.owner, cyc.owner);
}

}  // namespace
}  // namespace pangulu::block
