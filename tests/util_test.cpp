#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace pangulu {
namespace {

TEST(Status, CodesAndCheck) {
  EXPECT_TRUE(Status::ok().is_ok());
  Status s = Status::invalid_argument("bad");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad");
  EXPECT_THROW(s.check(), std::runtime_error);
  EXPECT_NO_THROW(Status::ok().check());
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_GE(t.seconds(), 0.0);
  PhaseTimer pt;
  pt.tic();
  pt.toc();
  pt.tic();
  pt.toc();
  EXPECT_GE(pt.total_seconds(), 0.0);
  pt.clear();
  EXPECT_EQ(pt.total_seconds(), 0.0);
}

TEST(Rng, DeterministicAndInRange) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_index(0, 99), b.uniform_index(0, 99));
  }
  Rng c(7);
  for (int i = 0; i < 1000; ++i) {
    index_t v = c.uniform_index(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    index_t p = c.power_law(50, 2.1);
    EXPECT_GE(p, 1);
    EXPECT_LE(p, 50);
  }
}

TEST(Histogram, Pow2Buckets) {
  Histogram h = Histogram::pow2(100);
  h.add(1);
  h.add(3);
  h.add(3.5);
  h.add(64);
  h.add(0.5);   // underflow
  h.add(1000);  // overflow
  EXPECT_EQ(h.count(0), 1);  // [1,2)
  EXPECT_EQ(h.count(1), 2);  // [2,4)
  EXPECT_EQ(h.total(), 6);
  EXPECT_EQ(h.label(0), "[1,2)");
}

TEST(Histogram, PercentBuckets) {
  Histogram h = Histogram::percent10();
  h.add(0.0);
  h.add(9.99);
  h.add(95.0);
  h.add(100.0);  // closed right edge
  EXPECT_EQ(h.count(0), 2);
  EXPECT_EQ(h.count(9), 2);
}

TEST(Histogram2D, BucketsBothAxes) {
  Histogram2D h({1, 4, 16, 64}, {1, 4, 16, 64});
  h.add(2, 2);
  h.add(10, 2);
  h.add(2, 10);
  EXPECT_EQ(h.count(0, 0), 1);
  EXPECT_EQ(h.count(1, 0), 1);
  EXPECT_EQ(h.count(0, 1), 1);
  EXPECT_EQ(h.nx(), 3u);
}

TEST(Table, RendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"x", TextTable::fmt(1.23456, 2)});
  t.add_row({"longer_name", TextTable::fmt_speedup(2.5)});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("longer_name"), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("2.50x"), std::string::npos);
}

TEST(Table, Geomean) {
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({3.0}), 3.0, 1e-12);
  EXPECT_EQ(geomean({}), 0.0);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  parallel_for(pool, 0, 1000, [&](index_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  ThreadPool pool(2);
  int count = 0;
  parallel_for(pool, 5, 5, [&](index_t) { ++count; });
  EXPECT_EQ(count, 0);
  std::atomic<int> c2{0};
  parallel_for(pool, 0, 3, [&](index_t) { c2.fetch_add(1); });
  EXPECT_EQ(c2.load(), 3);
}

}  // namespace
}  // namespace pangulu
