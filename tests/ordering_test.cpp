#include <gtest/gtest.h>

#include <cmath>

#include "matgen/generators.hpp"
#include "ordering/graph.hpp"
#include "ordering/mc64.hpp"
#include "ordering/min_degree.hpp"
#include "ordering/nested_dissection.hpp"
#include "ordering/rcm.hpp"
#include "ordering/reorder.hpp"
#include "sparse/ops.hpp"
#include "symbolic/fill.hpp"

namespace pangulu::ordering {
namespace {

TEST(Graph, FromMatrixSymmetrisesAndDropsDiagonal) {
  Coo coo(4, 4);
  coo.add(0, 0, 1.0);
  coo.add(1, 0, 1.0);  // one-directional edge 0-1
  coo.add(3, 2, 1.0);
  Graph g = Graph::from_matrix(Csc::from_coo(coo));
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.degree(2), 1);
  EXPECT_EQ(g.degree(3), 1);
}

TEST(Graph, InducedSubgraphKeepsInternalEdges) {
  Csc m = matgen::grid2d_laplacian(4, 4);
  Graph g = Graph::from_matrix(m);
  std::vector<index_t> verts = {0, 1, 2, 3};  // first grid row: a path
  Graph s = g.induced(verts, nullptr);
  EXPECT_EQ(s.n, 4);
  EXPECT_EQ(s.degree(0), 1);
  EXPECT_EQ(s.degree(1), 2);
}

class Mc64P : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Mc64P, PerfectMatchingWithBoundedScaledEntries) {
  Csc a = matgen::random_sparse(60, 4, GetParam());
  Mc64Result r;
  ASSERT_TRUE(mc64(a, &r).is_ok());
  EXPECT_TRUE(is_permutation(r.row_perm));
  // Every matched entry exists.
  for (index_t j = 0; j < a.n_cols(); ++j)
    ASSERT_GE(a.find(r.row_of_col[static_cast<std::size_t>(j)], j), 0);
  // Scaled matrix: all entries <= 1 (+eps), matched entries == 1.
  Csc s = a;
  s.scale(r.row_scale, r.col_scale);
  for (index_t j = 0; j < s.n_cols(); ++j) {
    for (nnz_t p = s.col_begin(j); p < s.col_end(j); ++p) {
      EXPECT_LE(std::abs(s.values()[static_cast<std::size_t>(p)]), 1.0 + 1e-8);
    }
    EXPECT_NEAR(std::abs(s.at(r.row_of_col[static_cast<std::size_t>(j)], j)),
                1.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Mc64P, ::testing::Values(1, 2, 3, 4, 5));

TEST(Mc64, PermutationPutsLargeEntriesOnDiagonal) {
  Csc a = matgen::circuit(80, 2.0, 2.2, 11);
  Mc64Result r;
  ASSERT_TRUE(mc64(a, &r).is_ok());
  Csc p = a.permuted(r.row_perm, identity_permutation(a.n_cols()));
  for (index_t j = 0; j < p.n_cols(); ++j)
    EXPECT_NE(p.at(j, j), 0.0) << "zero diagonal after MC64 at " << j;
}

TEST(Mc64, DetectsStructuralSingularity) {
  Coo coo(3, 3);  // column 2 empty
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);
  Csc a = Csc::from_coo(coo);
  Mc64Result r;
  EXPECT_FALSE(mc64(a, &r).is_ok());
}

TEST(Mc64, IdentityMatrixIsFixedPoint) {
  Coo coo(5, 5);
  for (index_t i = 0; i < 5; ++i) coo.add(i, i, 2.0);
  Mc64Result r;
  ASSERT_TRUE(mc64(Csc::from_coo(coo), &r).is_ok());
  for (index_t i = 0; i < 5; ++i)
    EXPECT_EQ(r.row_perm[static_cast<std::size_t>(i)], i);
}

template <typename F>
void expect_valid_ordering(F make_perm) {
  Csc m = matgen::grid2d_laplacian(12, 12);
  Graph g = Graph::from_matrix(m);
  auto perm = make_perm(g);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(MinDegree, ProducesValidPermutation) {
  expect_valid_ordering([](const Graph& g) { return min_degree(g); });
}

TEST(Rcm, ProducesValidPermutation) {
  expect_valid_ordering([](const Graph& g) { return rcm(g); });
}

TEST(NestedDissection, ProducesValidPermutation) {
  expect_valid_ordering([](const Graph& g) { return nested_dissection(g); });
}

TEST(NestedDissection, HandlesDisconnectedGraphs) {
  // Two separate 3x3 grids in one matrix.
  Csc g1 = matgen::grid2d_laplacian(3, 3);
  Coo coo(18, 18);
  for (index_t j = 0; j < 9; ++j) {
    for (nnz_t p = g1.col_begin(j); p < g1.col_end(j); ++p) {
      index_t r = g1.row_idx()[static_cast<std::size_t>(p)];
      value_t v = g1.values()[static_cast<std::size_t>(p)];
      coo.add(r, j, v);
      coo.add(r + 9, j + 9, v);
    }
  }
  Graph g = Graph::from_matrix(Csc::from_coo(coo));
  NdOptions opts;
  opts.leaf_size = 4;
  auto perm = nested_dissection(g, opts);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(NestedDissection, ReducesFillVersusNatural) {
  Csc m = matgen::grid2d_laplacian(24, 24);
  Graph g = Graph::from_matrix(m);
  auto nd = nested_dissection(g);

  symbolic::SymbolicResult natural, dissected;
  ASSERT_TRUE(symbolic::symbolic_symmetric(m, &natural).is_ok());
  Csc pm = m.permuted(nd, nd);
  ASSERT_TRUE(symbolic::symbolic_symmetric(pm, &dissected).is_ok());
  EXPECT_LT(dissected.nnz_lu, natural.nnz_lu)
      << "ND should beat the natural ordering on a 2D grid";
}

TEST(MinDegree, ReducesFillVersusNatural) {
  Csc m = matgen::grid2d_laplacian(20, 20);
  Graph g = Graph::from_matrix(m);
  auto md = min_degree(g);
  symbolic::SymbolicResult natural, ordered;
  ASSERT_TRUE(symbolic::symbolic_symmetric(m, &natural).is_ok());
  Csc pm = m.permuted(md, md);
  ASSERT_TRUE(symbolic::symbolic_symmetric(pm, &ordered).is_ok());
  EXPECT_LT(ordered.nnz_lu, natural.nnz_lu);
}

TEST(Reorder, FullPipelineProducesConsistentMatrix) {
  Csc a = matgen::circuit(100, 2.0, 2.2, 77);
  ReorderOptions opts;
  ReorderResult r;
  ASSERT_TRUE(reorder(a, opts, &r).is_ok());
  EXPECT_TRUE(is_permutation(r.row_perm));
  EXPECT_TRUE(is_permutation(r.col_perm));
  // permuted(r2, c2) must equal row_scale[r]*a(r,c)*col_scale[c].
  for (index_t c = 0; c < a.n_cols(); ++c) {
    for (nnz_t p = a.col_begin(c); p < a.col_end(c); ++p) {
      index_t row = a.row_idx()[static_cast<std::size_t>(p)];
      value_t expect = r.row_scale[static_cast<std::size_t>(row)] *
                       a.values()[static_cast<std::size_t>(p)] *
                       r.col_scale[static_cast<std::size_t>(c)];
      EXPECT_NEAR(r.permuted.at(r.row_perm[static_cast<std::size_t>(row)],
                                r.col_perm[static_cast<std::size_t>(c)]),
                  expect, 1e-12 * (1 + std::abs(expect)));
    }
  }
  // MC64+perm must leave the diagonal structurally nonzero.
  for (index_t j = 0; j < r.permuted.n_cols(); ++j)
    EXPECT_NE(r.permuted.at(j, j), 0.0);
}

TEST(Reorder, NaturalAndNoMc64IsIdentity) {
  Csc a = matgen::random_sparse(30, 3, 5);
  ReorderOptions opts;
  opts.use_mc64 = false;
  opts.fill_reducing = FillReducing::kNatural;
  ReorderResult r;
  ASSERT_TRUE(reorder(a, opts, &r).is_ok());
  EXPECT_TRUE(r.permuted.approx_equal(a, 0.0));
}

TEST(Reorder, RejectsRectangular) {
  Csc a = matgen::random_rect(4, 5, 0.5, 1);
  ReorderResult r;
  EXPECT_FALSE(reorder(a, {}, &r).is_ok());
}

}  // namespace
}  // namespace pangulu::ordering
