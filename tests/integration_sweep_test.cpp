// Cross-configuration integration sweep: every combination of scheduler,
// kernel policy, fill-reducing ordering and rank count must produce a
// correct solve on matrices from different structural classes. This is the
// suite that catches interactions the per-module tests cannot.
#include <gtest/gtest.h>

#include <tuple>

#include "baseline/supernodal.hpp"
#include "matgen/generators.hpp"
#include "solver/solver.hpp"
#include "sparse/ops.hpp"

namespace pangulu::solver {
namespace {

Csc matrix_for(int cls) {
  switch (cls) {
    case 0: return matgen::grid2d_laplacian(12, 12);        // very sparse
    case 1: return matgen::circuit(180, 2.0, 2.2, 99);      // irregular
    case 2: return matgen::banded_random(150, 25, 0.5, 3, 4);  // dense-ish
    default: return matgen::cage_style(160, 3, 8);          // unsymmetric
  }
}

class SweepP
    : public ::testing::TestWithParam<std::tuple<
          int, runtime::ScheduleMode, runtime::KernelPolicy, rank_t>> {};

TEST_P(SweepP, FullPipelineSolves) {
  auto [cls, schedule, policy, ranks] = GetParam();
  Csc a = matrix_for(cls);
  Options opts;
  opts.schedule = schedule;
  opts.policy = policy;
  opts.n_ranks = ranks;

  Solver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  std::vector<value_t> ones(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  a.spmv(ones, b);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
  ASSERT_TRUE(s.solve(b, x).is_ok());
  EXPECT_LT(relative_residual(a, x, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SweepP,
    ::testing::Combine(
        ::testing::Values(0, 1, 2, 3),
        ::testing::Values(runtime::ScheduleMode::kSyncFree,
                          runtime::ScheduleMode::kLevelSet),
        ::testing::Values(runtime::KernelPolicy::kAdaptive,
                          runtime::KernelPolicy::kFixedCpu,
                          runtime::KernelPolicy::kFixedGpu),
        ::testing::Values<rank_t>(1, 3, 8)));

class OrderingSweepP
    : public ::testing::TestWithParam<std::tuple<int, ordering::FillReducing>> {
};

TEST_P(OrderingSweepP, EveryOrderingSolvesEveryClass) {
  auto [cls, fill_reducing] = GetParam();
  Csc a = matrix_for(cls);
  Options opts;
  opts.reorder.fill_reducing = fill_reducing;
  opts.n_ranks = 2;
  Solver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  std::vector<value_t> ones(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  a.spmv(ones, b);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
  ASSERT_TRUE(s.solve(b, x).is_ok());
  EXPECT_LT(relative_residual(a, x, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrderings, OrderingSweepP,
    ::testing::Combine(
        ::testing::Values(0, 1, 2, 3),
        ::testing::Values(ordering::FillReducing::kNestedDissection,
                          ordering::FillReducing::kMinDegree,
                          ordering::FillReducing::kAmd,
                          ordering::FillReducing::kRcm,
                          ordering::FillReducing::kNatural)));

TEST(CrossSolver, BothSolversAgreeOnAllPaperClasses) {
  for (const auto& name : matgen::paper_matrix_names()) {
    SCOPED_TRACE(name);
    Csc a = matgen::paper_matrix(name, 0.18);
    std::vector<value_t> ones(static_cast<std::size_t>(a.n_cols()), 1.0);
    std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
    a.spmv(ones, b);

    Solver pangu;
    ASSERT_TRUE(pangu.factorize(a, {}).is_ok());
    std::vector<value_t> xp(static_cast<std::size_t>(a.n_cols()));
    ASSERT_TRUE(pangu.solve(b, xp).is_ok());

    baseline::SupernodalSolver base;
    ASSERT_TRUE(base.factorize(a, {}).is_ok());
    std::vector<value_t> xb(static_cast<std::size_t>(a.n_cols()));
    ASSERT_TRUE(base.solve(b, xb).is_ok());

    for (std::size_t i = 0; i < xp.size(); ++i)
      EXPECT_NEAR(xp[i], xb[i], 2e-5) << name << " index " << i;
  }
}

TEST(BlockSizeSweep, SolvesAtExtremeBlockSizes) {
  Csc a = matgen::circuit(120, 2.0, 2.2, 44);
  for (index_t bs : {1, 3, 17, 64, 1000}) {
    SCOPED_TRACE(bs);
    Options opts;
    opts.block_size = bs;
    opts.n_ranks = 2;
    Solver s;
    ASSERT_TRUE(s.factorize(a, opts).is_ok());
    std::vector<value_t> ones(static_cast<std::size_t>(a.n_cols()), 1.0);
    std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
    a.spmv(ones, b);
    std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
    ASSERT_TRUE(s.solve(b, x).is_ok());
    EXPECT_LT(relative_residual(a, x, b), 1e-9);
  }
}

}  // namespace
}  // namespace pangulu::solver
