// Property tests of the static task-graph verifier (analysis/verify):
// deliberately corrupted states — an off-by-one sync-free counter, a block
// orphaned by a fake remap, a cyclic dependency edge, an unowned block —
// must each be diagnosed as StatusCode::kInvariantViolation naming the
// right invariant, while every honest state (all matrix classes, all rank
// counts, recoverable fault plans, post-crash remapped mappings) passes at
// verify_level=full.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/verify.hpp"
#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "matgen/generators.hpp"
#include "runtime/fault.hpp"
#include "runtime/sim.hpp"
#include "solver/solver.hpp"
#include "symbolic/fill.hpp"
#include "util/rng.hpp"

namespace pangulu::analysis {
namespace {

struct Prepared {
  block::BlockMatrix bm;
  std::vector<block::Task> tasks;
  block::Mapping mapping;
  std::vector<index_t> counters;
};

Prepared prepare(const Csc& a, index_t block_size, rank_t ranks) {
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(a, &sym).check();
  Prepared p;
  p.bm = block::BlockMatrix::from_filled(sym.filled, block_size);
  p.tasks = block::enumerate_tasks(p.bm);
  p.mapping = block::cyclic_mapping(p.bm, block::ProcessGrid::make(ranks));
  p.counters = block::sync_free_array(p.bm, p.tasks);
  return p;
}

Csc matrix_for(int cls) {
  switch (cls) {
    case 0: return matgen::grid2d_laplacian(10, 10);
    case 1: return matgen::circuit(150, 2.0, 2.2, 99);
    case 2: return matgen::banded_random(120, 20, 0.5, 3, 4);
    default: return matgen::cage_style(140, 3, 8);
  }
}

/// The umbrella verdict at a level, as (code, message).
std::pair<StatusCode, std::string> verdict(const Prepared& p, VerifyLevel lvl,
                                           const std::vector<char>& alive = {}) {
  Status s = verify_task_graph(p.bm, p.tasks, p.mapping, p.counters, lvl, alive);
  return {s.code(), s.message()};
}

TEST(Verifier, HonestStatePassesAtEveryLevel) {
  for (int cls = 0; cls < 4; ++cls) {
    Prepared p = prepare(matrix_for(cls), 16, 4);
    for (VerifyLevel lvl :
         {VerifyLevel::kOff, VerifyLevel::kCheap, VerifyLevel::kFull}) {
      auto [code, msg] = verdict(p, lvl);
      EXPECT_EQ(code, StatusCode::kOk) << "class " << cls << " level "
                                       << to_string(lvl) << ": " << msg;
    }
  }
}

TEST(Verifier, ReportCountsWork) {
  Prepared p = prepare(matrix_for(0), 16, 4);
  VerifyReport r;
  ASSERT_TRUE(verify_task_graph(p.bm, p.tasks, p.mapping, p.counters,
                                VerifyLevel::kFull, {}, &r)
                  .is_ok());
  EXPECT_GT(r.tasks_checked, 0u);
  EXPECT_GT(r.blocks_checked, 0u);
  EXPECT_GT(r.edges_checked, 0u);
  EXPECT_GE(r.seconds, 0.0);
}

// --- Seeded corruptions ------------------------------------------------

TEST(Verifier, OffByOneCounterIsDiagnosed) {
  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    Prepared p = prepare(matrix_for(trial % 4), 16, 4);
    const auto pos = static_cast<std::size_t>(rng.uniform_i64(
        0, static_cast<std::int64_t>(p.counters.size()) - 1));
    p.counters[pos] += rng.bernoulli(0.5) ? 1 : -1;
    auto [code, msg] = verdict(p, VerifyLevel::kCheap);
    EXPECT_EQ(code, StatusCode::kInvariantViolation) << "trial " << trial;
    EXPECT_NE(msg.find("counter-conservation"), std::string::npos) << msg;
  }
}

TEST(Verifier, OrphanedBlockAfterFakeRemapIsDiagnosed) {
  Prepared p = prepare(matrix_for(1), 16, 4);
  // A "remap" that forgets to move rank 2's blocks: mark it dead but leave
  // the ownership array untouched.
  std::vector<char> alive(4, 1);
  alive[2] = 0;
  auto [code, msg] = verdict(p, VerifyLevel::kCheap, alive);
  ASSERT_EQ(code, StatusCode::kInvariantViolation);
  EXPECT_NE(msg.find("mapping-totality"), std::string::npos) << msg;
  EXPECT_NE(msg.find("orphaned"), std::string::npos) << msg;

  // The honest remap fixes exactly this: ownership moves to survivors.
  ASSERT_GE(p.mapping.remap_failed_rank(2, alive), 0);
  EXPECT_EQ(verdict(p, VerifyLevel::kFull, alive).first, StatusCode::kOk);
}

TEST(Verifier, UnownedBlockIsDiagnosed) {
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    Prepared p = prepare(matrix_for(trial % 4), 16, 4);
    const auto pos = static_cast<std::size_t>(rng.uniform_i64(
        0, static_cast<std::int64_t>(p.mapping.owner.size()) - 1));
    p.mapping.owner[pos] = rng.bernoulli(0.5) ? rank_t{-1} : rank_t{4};
    auto [code, msg] = verdict(p, VerifyLevel::kCheap);
    EXPECT_EQ(code, StatusCode::kInvariantViolation) << "trial " << trial;
    EXPECT_NE(msg.find("mapping-totality"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unowned"), std::string::npos) << msg;
  }
}

TEST(Verifier, CyclicEdgeIsDiagnosed) {
  Rng rng(13);
  for (int trial = 0; trial < 8; ++trial) {
    Prepared p = prepare(matrix_for(trial % 4), 16, 4);
    // Point a random SSSSM's L-side source at its own target: the update
    // then waits on the very finaliser that waits on the update — a
    // two-task dependency cycle.
    std::vector<std::size_t> ssssm;
    for (std::size_t i = 0; i < p.tasks.size(); ++i) {
      if (p.tasks[i].kind == block::TaskKind::kSsssm) ssssm.push_back(i);
    }
    ASSERT_FALSE(ssssm.empty());
    const std::size_t victim = ssssm[static_cast<std::size_t>(rng.uniform_i64(
        0, static_cast<std::int64_t>(ssssm.size()) - 1))];
    p.tasks[victim].src_a = p.tasks[victim].target;
    Status s = verify_schedulability(p.bm, p.tasks);
    EXPECT_EQ(s.code(), StatusCode::kInvariantViolation) << "trial " << trial;
    EXPECT_NE(s.message().find("schedulability"), std::string::npos)
        << s.message();
    EXPECT_NE(s.message().find("cycle"), std::string::npos) << s.message();
  }
}

TEST(Verifier, StructuralCorruptionsAreDiagnosed) {
  Prepared p = prepare(matrix_for(0), 16, 4);

  // Dropped task: the target block loses its only finalising task.
  {
    auto tasks = p.tasks;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (tasks[i].kind == block::TaskKind::kGessm) {
        tasks.erase(tasks.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    Status s = verify_task_structure(p.bm, tasks);
    ASSERT_EQ(s.code(), StatusCode::kInvariantViolation);
    EXPECT_NE(s.message().find("task-structure"), std::string::npos);
  }

  // Duplicated GETRF: double-fire of a diagonal factorisation.
  {
    auto tasks = p.tasks;
    tasks.push_back(tasks.front());  // tasks start with GETRF of step 0
    Status s = verify_task_structure(p.bm, tasks);
    ASSERT_EQ(s.code(), StatusCode::kInvariantViolation);
    EXPECT_NE(s.message().find("task-structure"), std::string::npos);
  }

  // Mis-coordinated source: a GESSM pointed at a non-diagonal block.
  {
    auto tasks = p.tasks;
    for (auto& t : tasks) {
      if (t.kind == block::TaskKind::kGessm) {
        t.src_a = t.target;
        break;
      }
    }
    Status s = verify_task_structure(p.bm, tasks);
    ASSERT_EQ(s.code(), StatusCode::kInvariantViolation);
    EXPECT_NE(s.message().find("diagonal"), std::string::npos) << s.message();
  }
}

TEST(Verifier, CounterArraySizeMismatchIsDiagnosed) {
  Prepared p = prepare(matrix_for(2), 16, 4);
  p.counters.pop_back();
  auto [code, msg] = verdict(p, VerifyLevel::kCheap);
  ASSERT_EQ(code, StatusCode::kInvariantViolation);
  EXPECT_NE(msg.find("counter-conservation"), std::string::npos) << msg;
}

TEST(Verifier, MessageConservationSeesDeadRoute) {
  Prepared p = prepare(matrix_for(1), 16, 4);
  // Mapping is total (blocks moved off rank 3) but a consumer was secretly
  // re-pointed back: simulate by killing rank 3 *after* remap and then
  // forging one block back onto the corpse. The cheap level catches it as
  // mapping totality; message conservation names the broken route when the
  // mapping check is bypassed.
  std::vector<char> alive(4, 1);
  alive[3] = 0;
  ASSERT_GE(p.mapping.remap_failed_rank(3, alive), 0);
  ASSERT_TRUE(verify_messages(p.bm, p.tasks, p.mapping, alive).is_ok());
  // Forge a cross-rank edge endpoint onto the dead rank.
  for (std::size_t pos = 0; pos < p.mapping.owner.size(); ++pos) {
    p.mapping.owner[pos] = 3;
    break;
  }
  Status s = verify_messages(p.bm, p.tasks, p.mapping, alive);
  ASSERT_EQ(s.code(), StatusCode::kInvariantViolation);
  // Diagnosed either as a dead endpoint on a route or (first) as totality.
  EXPECT_TRUE(s.message().find("dead") != std::string::npos ||
              s.message().find("orphaned") != std::string::npos)
      << s.message();
}

// --- Honest-state sweeps ----------------------------------------------

TEST(Verifier, FullLevelPassesOnAllIntegrationMatrices) {
  for (int cls = 0; cls < 4; ++cls) {
    for (rank_t ranks : {1, 3, 8}) {
      Prepared p = prepare(matrix_for(cls), 16, ranks);
      auto [code, msg] = verdict(p, VerifyLevel::kFull);
      EXPECT_EQ(code, StatusCode::kOk)
          << "class " << cls << " ranks " << ranks << ": " << msg;
    }
  }
}

TEST(Verifier, FullLevelPassesAfterEveryRecoverableRemap) {
  // Cascading crashes: after each remap the surviving state must still
  // satisfy totality and message conservation at level full.
  Prepared p = prepare(matrix_for(3), 16, 6);
  std::vector<char> alive(6, 1);
  for (rank_t dead : {2, 0, 5}) {
    alive[static_cast<std::size_t>(dead)] = 0;
    ASSERT_GE(p.mapping.remap_failed_rank(dead, alive), 0);
    auto [code, msg] = verdict(p, VerifyLevel::kFull, alive);
    EXPECT_EQ(code, StatusCode::kOk) << "after killing rank " << dead << ": "
                                     << msg;
  }
}

TEST(Verifier, SolverRunsVerifierOnFaultPlans) {
  // End to end: factorisation under a recoverable fault plan, with the
  // verifier at full level both before numerics and after the in-run remap.
  Csc a = matgen::grid2d_laplacian(12, 12);
  solver::Options opts;
  opts.n_ranks = 4;
  opts.verify_level = VerifyLevel::kFull;
  opts.fault_plan = runtime::FaultPlan::random(/*seed=*/5, /*n_ranks=*/4,
                                               /*horizon_s=*/1e-3);
  solver::Solver s;
  ASSERT_TRUE(s.factorize(a, opts).is_ok());
  EXPECT_GE(s.stats().verify_seconds, 0.0);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()), 1.0);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
  ASSERT_TRUE(s.solve(b, x).is_ok());
}

TEST(Verifier, LevelNamesRoundTrip) {
  EXPECT_STREQ(to_string(VerifyLevel::kOff), "off");
  EXPECT_STREQ(to_string(VerifyLevel::kCheap), "cheap");
  EXPECT_STREQ(to_string(VerifyLevel::kFull), "full");
}

}  // namespace
}  // namespace pangulu::analysis
