// Preprocessing front-end scaling: serial reference vs the threaded phases
// (symbolic fill, 2D blocking, mapping/balancing) at 1/2/4/8 worker threads.
// Reordering is excluded: it is a separate pipeline stage with its own bench
// (the front-end phases here are the ones rebuilt on every re-factorisation).
//
// Doubles as the perf smoke for `ctest -L perf`: the harness exits non-zero
// when the 1-thread parallel path (which dispatches straight to the serial
// code) regresses below the no-regression guard vs the serial reference.
// Emits BENCH_preprocess.json through the JsonReporter.
#include <algorithm>
#include <iostream>
#include <memory>
#include <thread>

#include "bench_common.hpp"
#include "parallel/thread_pool.hpp"
#include "sparse/ops.hpp"

using namespace pangulu;

namespace {

// Per-configuration phase minima across the interleaved repetitions.
struct PhaseTimes {
  double symbolic = 0;
  double blocking = 0;
  double mapping = 0;
  double total() const { return symbolic + blocking + mapping; }
};

}  // namespace

int main() {
  const double scale = bench::bench_scale();
  const int reps = 5;
  // 1-thread runs dispatch to the serial code path, so the only difference
  // from the reference is measurement jitter; the guard leaves a margin for
  // that rather than demanding a strict >= 1.0 on noisy CI hosts (a shared
  // 1-core container can swing best-of-N by 15% when the suite runs around
  // it). PANGULU_PREPROCESS_GUARD overrides the floor.
  double serial_guard = 0.85;
  if (const char* g = std::getenv("PANGULU_PREPROCESS_GUARD")) {
    const double v = std::atof(g);
    if (v > 0) serial_guard = v;
  }

  std::cout << "Preprocessing front-end scaling (tentpole), scale=" << scale
            << '\n';

  bench::JsonReporter json;
  json.meta("bench", "preprocess");
  json.meta("scale", scale);
  json.meta("reps", static_cast<double>(reps));
  json.meta("hardware_threads",
            static_cast<double>(std::thread::hardware_concurrency()));

  bool guard_ok = true;
  std::vector<double> speedup4;

  for (const char* name : {"ASIC_680k", "Si87H76", "ecology1"}) {
    const Csc raw = matgen::paper_matrix(name, scale);
    ordering::ReorderResult reorder;
    ordering::reorder(raw, {}, &reorder).check();
    const Csc& a = reorder.permuted;

    // One warm pass to obtain the structures the timed phases need.
    symbolic::SymbolicResult sym;
    symbolic::symbolic_symmetric_serial(a, &sym).check();
    const index_t bs = block::choose_block_size(a.n_cols(), sym.nnz_lu);
    block::BlockMatrix bm = block::BlockMatrix::from_filled_serial(sym.filled, bs);
    const auto tasks = block::enumerate_tasks(bm);
    const auto grid = block::ProcessGrid::make(8);

    auto time_serial = [&](PhaseTimes* out) {
      Timer t;
      symbolic::SymbolicResult r;
      symbolic::symbolic_symmetric_serial(a, &r).check();
      out->symbolic = std::min(out->symbolic, t.seconds());
      t.reset();
      auto b = block::BlockMatrix::from_filled_serial(sym.filled, bs);
      out->blocking = std::min(out->blocking, t.seconds());
      t.reset();
      auto map = block::cyclic_mapping(bm, grid);
      map = block::balanced_mapping_serial(bm, tasks, grid, map);
      out->mapping = std::min(out->mapping, t.seconds());
    };
    auto time_parallel = [&](ThreadPool& pool, PhaseTimes* out) {
      Timer t;
      symbolic::SymbolicResult r;
      symbolic::symbolic_symmetric(a, &r, &pool).check();
      out->symbolic = std::min(out->symbolic, t.seconds());
      t.reset();
      auto b = block::BlockMatrix::from_filled(sym.filled, bs, &pool);
      out->blocking = std::min(out->blocking, t.seconds());
      t.reset();
      auto map = block::cyclic_mapping(bm, grid, &pool);
      map = block::balanced_mapping(bm, tasks, grid, map, nullptr, &pool);
      out->mapping = std::min(out->mapping, t.seconds());
    };

    // The guard compares against a serial reference measured *interleaved*
    // with the 1-thread run: on a shared host, load drift between two
    // separate measurement windows easily exceeds the dispatch overhead the
    // guard is looking for, so both sides must share the same window.
    constexpr double kInit = 1e30;
    PhaseTimes ser{kInit, kInit, kInit};

    std::cout << "\n--- " << name << " (n=" << a.n_cols()
              << ", nnz(L+U)=" << sym.nnz_lu << ", bs=" << bs << ") ---\n";
    TextTable t({"threads", "symbolic (s)", "blocking (s)", "mapping (s)",
                 "total (s)", "speedup"});

    const int thread_counts[] = {1, 2, 4, 8};
    std::vector<std::unique_ptr<ThreadPool>> pools;
    std::vector<std::pair<int, PhaseTimes>> rows;
    for (int threads : thread_counts) {
      pools.push_back(
          std::make_unique<ThreadPool>(static_cast<std::size_t>(threads)));
      rows.emplace_back(threads, PhaseTimes{kInit, kInit, kInit});
    }
    for (int i = 0; i < reps; ++i) {
      // Alternate who goes first: under cgroup CPU quotas, whichever run
      // starts later in the enforcement window gets throttled more, so a
      // fixed order would bias the serial-vs-1-thread comparison.
      if (i % 2 == 0) {
        time_serial(&ser);
        time_parallel(*pools[0], &rows[0].second);
      } else {
        time_parallel(*pools[0], &rows[0].second);
        time_serial(&ser);
      }
      for (std::size_t k = 1; k < pools.size(); ++k) {
        time_parallel(*pools[k], &rows[k].second);
      }
    }
    t.add_row({"serial", TextTable::fmt(ser.symbolic, 4),
               TextTable::fmt(ser.blocking, 4), TextTable::fmt(ser.mapping, 4),
               TextTable::fmt(ser.total(), 4), "1.00x"});

    for (const auto& [threads, par] : rows) {
      const double speedup =
          par.total() > 0 ? ser.total() / par.total() : 0.0;
      t.add_row({std::to_string(threads), TextTable::fmt(par.symbolic, 4),
                 TextTable::fmt(par.blocking, 4),
                 TextTable::fmt(par.mapping, 4),
                 TextTable::fmt(par.total(), 4),
                 TextTable::fmt_speedup(speedup)});

      json.begin_row();
      json.field("matrix", name);
      json.field("threads", static_cast<double>(threads));
      json.field("symbolic_seconds", par.symbolic);
      json.field("blocking_seconds", par.blocking);
      json.field("mapping_seconds", par.mapping);
      json.field("total_seconds", par.total());
      json.field("serial_symbolic_seconds", ser.symbolic);
      json.field("serial_blocking_seconds", ser.blocking);
      json.field("serial_mapping_seconds", ser.mapping);
      json.field("serial_total_seconds", ser.total());
      json.field("speedup", speedup);

      if (threads == 1 && speedup < serial_guard) {
        guard_ok = false;
        std::cout << "GUARD FAILED: 1-thread speedup "
                  << TextTable::fmt_speedup(speedup) << " < "
                  << TextTable::fmt_speedup(serial_guard) << '\n';
      }
      if (threads == 4) speedup4.push_back(speedup);
    }
    t.print(std::cout);
  }

  const double g4 = geomean(speedup4);
  json.meta("geomean_speedup_4_threads", g4);
  std::cout << "\ngeomean end-to-end speedup at 4 threads: "
            << TextTable::fmt_speedup(g4)
            << " (target: >= 2x on a host with 4+ cores)\n";
  if (!json.write_file("BENCH_preprocess.json")) {
    std::cout << "failed to write BENCH_preprocess.json\n";
    return 1;
  }
  std::cout << "wrote BENCH_preprocess.json\n";
  if (!guard_ok) return 1;
  std::cout << "1-thread no-regression guard passed\n";
  return 0;
}
