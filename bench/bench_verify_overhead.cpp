// Verifier-cost ablation: what the static task-graph verifier
// (analysis/verify) costs relative to the work it guards. For each matrix we
// time the cheap and full verification levels against the sync-free DES
// factorisation time at 8 ranks, reporting absolute milliseconds and the
// overhead percentage. The acceptance budget is <2% for the cheap level —
// that is the level the solver runs by default before every factorisation,
// so it must stay in the noise; the full level (structural recomputation,
// Kahn's deadlock proof, message ledger) is the debugging mode and may cost
// what it costs.
#include <iostream>

#include "analysis/verify.hpp"
#include "bench_common.hpp"

using namespace pangulu;

namespace {

double time_verify(const bench::PreparedMatrix& p, const block::Mapping& map,
                   const std::vector<index_t>& counters,
                   analysis::VerifyLevel lvl, analysis::VerifyReport* rep) {
  Timer t;
  analysis::verify_task_graph(p.blocks, p.tasks, map, counters, lvl, {}, rep)
      .check();
  return t.seconds();
}

}  // namespace

int main() {
  const double scale = bench::bench_scale();
  const rank_t ranks = 8;

  std::cout << "Static verifier overhead vs sync-free factorisation, " << ranks
            << " ranks, scale=" << scale << " (budget: cheap < 2%)\n";
  TextTable t({"matrix", "tasks", "factor-ms", "cheap-ms", "cheap-%",
               "full-ms", "full-%"});

  bool over_budget = false;
  for (const auto& name : bench::bench_matrices()) {
    bench::PreparedMatrix p = bench::prepare(name, scale);
    auto grid = block::ProcessGrid::make(ranks);
    block::Mapping map = block::cyclic_mapping(p.blocks, grid);
    map = block::balanced_mapping(p.blocks, p.tasks, grid, map, nullptr);
    const std::vector<index_t> counters =
        block::sync_free_array(p.blocks, p.tasks);

    // Time what the verifier actually guards: a sync-free run that executes
    // the numeric kernels (the solver's default path), not the timing-only
    // DES — against that the linear-time verifier must stay in the noise.
    block::BlockMatrix bm = p.blocks;
    runtime::SimOptions so;
    so.n_ranks = ranks;
    so.schedule = runtime::ScheduleMode::kSyncFree;
    so.execute_numerics = true;
    runtime::SimResult res;
    Timer ft;
    runtime::simulate_factorization(bm, p.tasks, map, so, &res).check();
    const double factor_s = ft.seconds();

    analysis::VerifyReport rep;
    const double cheap_s =
        time_verify(p, map, counters, analysis::VerifyLevel::kCheap, &rep);
    const double full_s =
        time_verify(p, map, counters, analysis::VerifyLevel::kFull, &rep);

    const double cheap_pct = 100.0 * cheap_s / factor_s;
    const double full_pct = 100.0 * full_s / factor_s;
    if (cheap_pct >= 2.0) over_budget = true;
    t.add_row({bench::short_name(name), std::to_string(p.tasks.size()),
               TextTable::fmt(factor_s * 1e3, 3),
               TextTable::fmt(cheap_s * 1e3, 3), TextTable::fmt(cheap_pct, 2),
               TextTable::fmt(full_s * 1e3, 3), TextTable::fmt(full_pct, 2)});
  }
  t.print(std::cout);
  std::cout << (over_budget
                    ? "WARNING: cheap-level verification exceeded the 2% "
                      "budget on at least one matrix\n"
                    : "cheap-level verification within the 2% budget on all "
                      "matrices\n");
  return over_budget ? 1 : 0;
}
