// Fault-injection ablation: how much virtual makespan the recovery protocol
// costs as the cluster degrades. For each matrix we run the sync-free DES
// fault-free, then under increasing message-drop rates, a 2x straggler, and
// a mid-run rank crash, and report the makespan overhead plus the protocol
// counters (retransmits, duplicate suppressions, re-mapped blocks). This is
// the robustness companion to Figure 12's scaling study: the same schedule,
// now on an imperfect cluster.
#include <iostream>

#include "bench_common.hpp"
#include "runtime/fault.hpp"

using namespace pangulu;

namespace {

runtime::SimResult run_with_faults(const bench::PreparedMatrix& p,
                                   rank_t ranks,
                                   const runtime::FaultPlan& plan) {
  block::BlockMatrix bm = p.blocks;
  auto grid = block::ProcessGrid::make(ranks);
  block::Mapping map = block::cyclic_mapping(bm, grid);
  map = block::balanced_mapping(bm, p.tasks, grid, map, nullptr);
  runtime::SimOptions opts;
  opts.n_ranks = ranks;
  opts.execute_numerics = false;
  opts.faults = plan;
  runtime::SimResult res;
  runtime::simulate_factorization(bm, p.tasks, map, opts, &res).check();
  return res;
}

}  // namespace

int main() {
  const double scale = bench::bench_scale();
  const rank_t ranks = 8;
  const std::vector<std::string> matrices = {"ASIC_680k", "ecology1",
                                             "Si87H76"};

  std::cout << "Fault-injection overhead on the sync-free scheduler, " << ranks
            << " ranks, scale=" << scale << '\n';
  TextTable t({"matrix", "scenario", "makespan-x", "retransmits", "dup-suppr",
               "remapped", "recovery-ms"});

  for (const auto& name : matrices) {
    bench::PreparedMatrix p = bench::prepare(name, scale);
    const runtime::SimResult clean =
        run_with_faults(p, ranks, runtime::FaultPlan{});

    auto report = [&](const std::string& scenario,
                      const runtime::FaultPlan& plan) {
      const runtime::SimResult res = run_with_faults(p, ranks, plan);
      t.add_row({name, scenario,
                 TextTable::fmt(res.makespan / clean.makespan, 3),
                 std::to_string(res.retransmits),
                 std::to_string(res.duplicates_suppressed),
                 std::to_string(res.remapped_blocks),
                 TextTable::fmt(res.recovery_time * 1e3, 3)});
    };

    report("fault-free", runtime::FaultPlan{});
    for (double drop : {0.01, 0.05, 0.20}) {
      runtime::FaultPlan plan;
      plan.seed = 42;
      plan.drop_prob = drop;
      plan.dup_prob = drop / 2;
      report("drop " + TextTable::fmt(100 * drop, 0) + "%", plan);
    }
    {
      runtime::FaultPlan plan;
      plan.slowdowns.push_back({1, 0.0, 2.0});
      report("2x straggler", plan);
    }
    {
      runtime::FaultPlan plan;
      plan.crashes.push_back({1, clean.makespan * 0.5});
      report("crash @50%", plan);
    }
  }
  t.print(std::cout);
  std::cout << "\nmakespan-x is relative to the fault-free run; recoverable "
               "faults never change the factors, only the clock.\n";
  return 0;
}
