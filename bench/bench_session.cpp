// Solver-session harness: measures what the pattern-reuse session buys over
// the from-scratch pipeline on the paper's matrix classes — (a) numeric-only
// refactorize() versus a full factorize() on the same pattern, (b) one
// blocked k-RHS panel solve versus k sequential single-RHS solves, and (c) a
// concurrent stress mix of refactorisations and solves through a SessionPool
// (admission control + memory budget), reporting p50/p95/p99 latency and
// throughput.
//
// Doubles as the perf smoke for `ctest -L perf`: exits non-zero when the
// refactorize speedup geomean drops below 2x (PANGULU_SESSION_REFACTOR_GUARD
// overrides) or the k=8 panel-solve speedup geomean drops below 2x
// (PANGULU_SESSION_MULTIRHS_GUARD). Emits BENCH_session.json.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "solver/session.hpp"
#include "solver/solver.hpp"
#include "util/rng.hpp"

using namespace pangulu;

namespace {

double guard_from_env(const char* name, double fallback) {
  if (const char* g = std::getenv(name)) {
    const double v = std::atof(g);
    if (v > 0) return v;
  }
  return fallback;
}

Csc perturbed(const Csc& a, unsigned seed) {
  Csc p = a;
  Rng rng(seed);
  for (value_t& v : p.values_mut())
    v *= static_cast<value_t>(rng.uniform(0.9, 1.1));
  return p;
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double w = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - w) + sorted[hi] * w;
}

}  // namespace

int main() {
  const double scale = bench::bench_scale();
  const int reps = 5;
  const index_t k = 8;
  const double refactor_guard =
      guard_from_env("PANGULU_SESSION_REFACTOR_GUARD", 2.0);
  const double multirhs_guard =
      guard_from_env("PANGULU_SESSION_MULTIRHS_GUARD", 2.0);

  std::cout << "Solver sessions, scale=" << scale << ", k=" << k
            << ", guards: refactorize >= " << refactor_guard
            << "x, multi-RHS >= " << multirhs_guard << "x\n";

  bench::JsonReporter json;
  json.meta("bench", "session");
  json.meta("scale", scale);
  json.meta("reps", static_cast<double>(reps));
  json.meta("k", static_cast<double>(k));
  json.meta("refactor_guard", refactor_guard);
  json.meta("multirhs_guard", multirhs_guard);

  // Refinement's residual spmv costs the same per column on both sides; turn
  // it off so the panel-vs-sequential ratio isolates the triangular sweeps
  // the blocking actually changes.
  solver::Options opts;
  opts.n_ranks = 4;
  opts.refine_iters = 0;

  // --- Refactorize: numeric-only reuse vs the full pipeline. The guarded
  // set is the session's target workload class — matrices whose pipeline
  // cost is structure-dominated (ordering + symbolic + blocking), i.e. the
  // Newton / time-stepping style patterns that refactorize() exists for.
  // Numeric-dominated matrices (ASIC_680k, Si87H76) cap near 1x by
  // construction (refactorize reruns the full numeric phase) and are covered
  // by the stress section below instead.
  TextTable rtable({"matrix", "n", "factor_s", "refactor_s", "refactor_x"});
  double refactor_log_sum = 0;
  int n_refactor = 0;
  for (const char* name : {"ecology1", "G3_circuit", "apache2"}) {
    const Csc a = matgen::paper_matrix(name, scale);
    const index_t n = a.n_cols();

    solver::Session session;
    session.setup(a, opts).check();

    // Interleave full-pipeline and numeric-only runs rep by rep and keep
    // each side's best, so load drift cannot masquerade as a speedup.
    double factor_s = 1e300, refactor_s = 1e300;
    for (int r = 0; r < reps; ++r) {
      const Csc ar = perturbed(a, 100u + static_cast<unsigned>(r));
      solver::Solver fresh;
      Timer t;
      fresh.factorize(ar, opts).check();
      factor_s = std::min(factor_s, t.seconds());
      t.reset();
      session.refactorize(ar).check();
      refactor_s = std::min(refactor_s, t.seconds());
    }
    const double refactor_x = factor_s / refactor_s;
    refactor_log_sum += std::log(refactor_x);
    ++n_refactor;

    rtable.add_row({name, std::to_string(n), TextTable::fmt(factor_s),
                    TextTable::fmt(refactor_s), TextTable::fmt(refactor_x)});
    json.begin_row();
    json.field("section", "refactorize");
    json.field("matrix", name);
    json.field("n", static_cast<double>(n));
    json.field("factor_seconds", factor_s);
    json.field("refactor_seconds", refactor_s);
    json.field("refactor_speedup", refactor_x);
  }
  const double refactor_geomean =
      std::exp(refactor_log_sum / std::max(1, n_refactor));
  rtable.print(std::cout);
  std::cout << "geomean: refactorize " << refactor_geomean << "x\n";

  // --- Multi-RHS: one k-wide panel sweep vs k sequential solves. The panel
  // amortises factor-pattern decode and factor-value traffic across columns,
  // which is a memory-bandwidth effect: it only shows once nnz(LU) streams
  // from memory instead of sitting in cache. Real time-stepping workloads
  // solve in that regime, so this section sizes each matrix up past the
  // cache (the 3D apache2 grid fills in much faster per dimension step, so a
  // smaller multiplier reaches the same regime within the smoke budget).
  struct MrCase {
    const char* name;
    double mult;
  };
  TextTable mtable({"matrix", "n", "seq8_solve_s", "panel8_solve_s",
                    "multirhs_x"});
  double multirhs_log_sum = 0;
  int n_multirhs = 0;
  for (const MrCase& mc : {MrCase{"ecology1", 6.0}, MrCase{"G3_circuit", 6.0},
                           MrCase{"apache2", 4.0}}) {
    const Csc a = matgen::paper_matrix(mc.name, scale * mc.mult);
    const index_t n = a.n_cols();
    solver::Session session;
    session.setup(a, opts).check();

    Rng rng(7);
    Dense b(n, k);
    for (index_t j = 0; j < k; ++j)
      for (index_t i = 0; i < n; ++i)
        b(i, j) = static_cast<value_t>(rng.uniform(-1.0, 1.0));
    double seq_s = 1e300, panel_s = 1e300;
    std::vector<value_t> xc(static_cast<std::size_t>(n));
    std::vector<value_t> bc(static_cast<std::size_t>(n));
    for (int r = 0; r < reps; ++r) {
      Timer t;
      for (index_t j = 0; j < k; ++j) {
        std::copy(b.col(j), b.col(j) + n, bc.begin());
        session.solve(bc, xc).check();
      }
      seq_s = std::min(seq_s, t.seconds());
      Dense x;
      t.reset();
      session.solve_multi(b, &x).check();
      panel_s = std::min(panel_s, t.seconds());
    }
    const double multirhs_x = seq_s / panel_s;
    multirhs_log_sum += std::log(multirhs_x);
    ++n_multirhs;

    mtable.add_row({mc.name, std::to_string(n), TextTable::fmt(seq_s),
                    TextTable::fmt(panel_s), TextTable::fmt(multirhs_x)});
    json.begin_row();
    json.field("section", "multirhs");
    json.field("matrix", mc.name);
    json.field("n", static_cast<double>(n));
    json.field("sequential_solve_seconds", seq_s);
    json.field("panel_solve_seconds", panel_s);
    json.field("multirhs_speedup", multirhs_x);
  }
  const double multirhs_geomean =
      std::exp(multirhs_log_sum / std::max(1, n_multirhs));
  mtable.print(std::cout);
  std::cout << "geomean: multi-RHS k=" << k << " " << multirhs_geomean
            << "x\n";

  // Concurrent stress: worker threads interleave refactorisations and
  // single-/multi-RHS solves against one session through a SessionPool.
  // Latencies are per admitted operation, admission wait included — that is
  // what a caller of a budgeted server observes.
  const Csc stress_a = matgen::paper_matrix("ASIC_680k", scale);
  const index_t sn = stress_a.n_cols();
  solver::Session stress;
  stress.setup(stress_a, opts).check();

  solver::SessionPoolOptions popts;
  popts.max_concurrent = 4;
  popts.memory_budget_bytes = 4 * stress.footprint_bytes();
  solver::SessionPool pool(popts);

  const int n_threads = 4;
  const int ops_per_thread = 30;
  std::vector<double> latencies;
  std::mutex lat_mu;
  std::atomic<int> op_failures{0};
  Timer wall;
  std::vector<std::thread> threads;
  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(900u + static_cast<unsigned>(t));
      std::vector<double> local;
      local.reserve(static_cast<std::size_t>(ops_per_thread));
      for (int i = 0; i < ops_per_thread; ++i) {
        Timer op;
        solver::SessionPool::Ticket ticket;
        const std::size_t need = (i % 10 == 0) ? stress.footprint_bytes()
                                               : stress.footprint_bytes() / 8;
        if (!pool.admit(need, &ticket).is_ok()) {
          op_failures.fetch_add(1);
          continue;
        }
        bool ok = true;
        if (i % 10 == 0) {
          ok = stress
                   .refactorize(
                       perturbed(stress_a, 300u + static_cast<unsigned>(i)))
                   .is_ok();
        } else if (i % 3 == 0) {
          Dense pb(sn, 4);
          for (index_t j = 0; j < 4; ++j)
            for (index_t r = 0; r < sn; ++r)
              pb(r, j) = static_cast<value_t>(rng.uniform(-1.0, 1.0));
          Dense px;
          ok = stress.solve_multi(pb, &px).is_ok();
        } else {
          std::vector<value_t> sb(static_cast<std::size_t>(sn));
          for (value_t& v : sb) v = static_cast<value_t>(rng.uniform(-1.0, 1.0));
          std::vector<value_t> sx(static_cast<std::size_t>(sn));
          ok = stress.solve(sb, sx).is_ok();
        }
        if (!ok) op_failures.fetch_add(1);
        ticket.release();
        local.push_back(op.seconds());
      }
      std::lock_guard lk(lat_mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (auto& th : threads) th.join();
  const double wall_s = wall.seconds();
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50) * 1e3;
  const double p95 = percentile(latencies, 0.95) * 1e3;
  const double p99 = percentile(latencies, 0.99) * 1e3;
  const double throughput =
      wall_s > 0 ? static_cast<double>(latencies.size()) / wall_s : 0;

  std::cout << "stress: " << latencies.size() << " ops on " << n_threads
            << " threads (pool cap " << popts.max_concurrent
            << "), throughput " << throughput << " ops/s, latency p50 " << p50
            << "ms p95 " << p95 << "ms p99 " << p99 << "ms, peak in-flight "
            << pool.peak_in_flight() << ", failures " << op_failures.load()
            << "\n";

  json.meta("refactor_geomean", refactor_geomean);
  json.meta("multirhs_geomean", multirhs_geomean);
  json.meta("stress_threads", static_cast<double>(n_threads));
  json.meta("stress_pool_max_concurrent",
            static_cast<double>(popts.max_concurrent));
  json.meta("stress_ops", static_cast<double>(latencies.size()));
  json.meta("stress_failures", static_cast<double>(op_failures.load()));
  json.meta("stress_throughput_ops_per_second", throughput);
  json.meta("stress_latency_p50_ms", p50);
  json.meta("stress_latency_p95_ms", p95);
  json.meta("stress_latency_p99_ms", p99);
  json.meta("stress_peak_in_flight", static_cast<double>(pool.peak_in_flight()));
  json.meta("stress_peak_bytes", static_cast<double>(pool.peak_bytes()));
  if (!json.write_file("BENCH_session.json"))
    std::cout << "warning: could not write BENCH_session.json\n";

  bool ok = true;
  if (op_failures.load() != 0) {
    std::cout << "FAIL: " << op_failures.load() << " stress operations failed\n";
    ok = false;
  }
  if (refactor_geomean < refactor_guard) {
    std::cout << "FAIL: refactorize speedup geomean " << refactor_geomean
              << "x below the " << refactor_guard << "x guard\n";
    ok = false;
  }
  if (multirhs_geomean < multirhs_guard) {
    std::cout << "FAIL: multi-RHS k=" << k << " speedup geomean "
              << multirhs_geomean << "x below the " << multirhs_guard
              << "x guard\n";
    ok = false;
  }
  if (!ok) return 1;
  std::cout << "OK: session reuse within guards (refactorize "
            << refactor_geomean << "x >= " << refactor_guard
            << "x, multi-RHS " << multirhs_geomean << "x >= " << multirhs_guard
            << "x)\n";
  return 0;
}
