// Ablation: the §4.2 static load balancer. Compares the plain 2D
// block-cyclic mapping against the time-slice balancing pass: maximum rank
// weight before/after, number of slice swaps, and the modeled numeric time
// both mappings achieve on the simulated cluster.
#include <iostream>

#include "bench_common.hpp"

using namespace pangulu;

int main() {
  const double scale = bench::bench_scale();
  const rank_t ranks = 16;
  std::cout << "Load-balancer ablation (16 simulated GPUs), scale=" << scale
            << '\n';
  TextTable t({"matrix", "max weight (cyclic)", "max weight (balanced)",
               "swaps", "time cyclic (s)", "time balanced (s)", "gain"});
  std::vector<double> gains;

  for (const auto& name : bench::bench_matrices()) {
    bench::PreparedMatrix p = bench::prepare(name, scale);
    auto grid = block::ProcessGrid::make(ranks);

    block::BlockMatrix bm_c = p.blocks;
    auto cyc = block::cyclic_mapping(bm_c, grid);
    runtime::SimOptions so;
    so.n_ranks = ranks;
    so.execute_numerics = false;
    runtime::SimResult res_c;
    runtime::simulate_factorization(bm_c, p.tasks, cyc, so, &res_c).check();

    block::BlockMatrix bm_b = p.blocks;
    block::BalanceStats bs;
    auto bal = block::balanced_mapping(bm_b, p.tasks, grid, cyc, &bs);
    runtime::SimResult res_b;
    runtime::simulate_factorization(bm_b, p.tasks, bal, so, &res_b).check();

    const double gain = res_b.makespan > 0 ? res_c.makespan / res_b.makespan : 1;
    gains.push_back(gain);
    t.add_row({name, TextTable::fmt_sci(bs.max_weight_before),
               TextTable::fmt_sci(bs.max_weight_after),
               std::to_string(bs.swaps), TextTable::fmt(res_c.makespan, 5),
               TextTable::fmt(res_b.makespan, 5),
               TextTable::fmt_speedup(gain)});
  }
  t.print(std::cout);
  std::cout << "geomean gain from balancing: "
            << TextTable::fmt_speedup(geomean(gains)) << '\n';
  return 0;
}
