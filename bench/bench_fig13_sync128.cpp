// Figure 13: synchronisation time on 128 GPUs — PanguLU's sync-free
// scheduling vs the baseline's per-level barriers. Paper: 2.20x average
// reduction, with near-parity on very regular matrices (audikw_1,
// Hook_1498) where supernodal level sets are already balanced.
#include <iostream>

#include "baseline/supernodal.hpp"
#include "bench_common.hpp"

using namespace pangulu;

int main() {
  const double scale = bench::bench_scale();
  const rank_t ranks = 128;
  std::cout << "Reproducing Figure 13 (sync time on 128 GPUs), scale=" << scale
            << '\n';
  TextTable t({"matrix", "baseline sync(s)", "PanguLU sync(s)", "reduction"});
  std::vector<double> reductions;

  const auto device = runtime::DeviceModel::a100_like();
  for (const auto& name : bench::bench_matrices()) {
    bench::PreparedMatrix p = bench::prepare(name, scale);
    auto pangu = bench::run_sim(p, ranks, device,
                                runtime::KernelPolicy::kAdaptive,
                                runtime::ScheduleMode::kSyncFree);

    baseline::SupernodalOptions bopts;
    bopts.execute_numerics = false;
    baseline::SupernodalSolver base;
    base.factorize(p.a, bopts).check();
    runtime::SimResult bsim;
    base.retime(ranks, device, &bsim).check();

    const double bs = bsim.avg_sync;
    const double ps = pangu.avg_sync;
    const double red = ps > 0 ? bs / ps : 0;
    reductions.push_back(red);
    t.add_row({name, TextTable::fmt(bs, 5), TextTable::fmt(ps, 5),
               TextTable::fmt_speedup(red)});
  }
  t.print(std::cout);
  std::cout << "average sync-time reduction: "
            << TextTable::fmt_speedup(geomean(reductions))
            << " (paper: 2.20x average)\n";
  return 0;
}
