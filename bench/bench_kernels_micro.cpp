// Google-benchmark microbenchmarks of the 17 sparse kernels (Table 1) at
// controlled block sizes/densities — complements bench_fig07_kernels, which
// measures the same kernels on harvested factorisation blocks.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "kernels/getrf.hpp"
#include "kernels/gessm.hpp"
#include "kernels/ssssm.hpp"
#include "kernels/tstrf.hpp"
#include "matgen/generators.hpp"
#include "symbolic/fill.hpp"

using namespace pangulu;
using namespace pangulu::kernels;

namespace {

Csc closed_block(index_t n, index_t per_col, std::uint64_t seed) {
  symbolic::SymbolicResult sym;
  symbolic::symbolic_unsymmetric(matgen::random_sparse(n, per_col, seed),
                                 false, &sym)
      .check();
  return sym.filled;
}

void BM_Getrf(benchmark::State& state) {
  const auto variant = static_cast<GetrfVariant>(state.range(0));
  const auto n = static_cast<index_t>(state.range(1));
  Csc base = closed_block(n, 4, 42);
  Workspace ws;
  for (auto _ : state) {
    Csc work = base;
    getrf(variant, work, ws, nullptr).check();
    benchmark::DoNotOptimize(work.values().data());
  }
  state.SetLabel(to_string(variant));
  state.counters["nnz"] = static_cast<double>(base.nnz());
  state.counters["flops"] = getrf_flops(base);
}
BENCHMARK(BM_Getrf)
    ->ArgsProduct({{0, 1, 2}, {32, 128, 256}})
    ->Unit(benchmark::kMicrosecond);

struct PanelFixture {
  Csc diag;
  Csc b_lower;  // GESSM operand
  Csc b_upper;  // TSTRF operand
  Workspace ws;
  PanelFixture(index_t n, index_t cols) {
    diag = closed_block(n, 4, 7);
    getrf(GetrfVariant::kCV1, diag, ws, nullptr).check();
    // Rectangular panels; patterns need no closure here because benchmarks
    // only measure time (all variants traverse identical entry sets).
    b_lower = matgen::random_rect(n, cols, 0.2, 8);
    b_upper = matgen::random_rect(cols, n, 0.2, 9);
  }
};

void BM_Gessm(benchmark::State& state) {
  const auto variant = static_cast<PanelVariant>(state.range(0));
  PanelFixture f(static_cast<index_t>(state.range(1)), 64);
  for (auto _ : state) {
    Csc work = f.b_lower;
    gessm(variant, f.diag, work, f.ws).check();
    benchmark::DoNotOptimize(work.values().data());
  }
  state.SetLabel("GESSM_" + to_string(variant));
}
BENCHMARK(BM_Gessm)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {64, 192}})
    ->Unit(benchmark::kMicrosecond);

void BM_Tstrf(benchmark::State& state) {
  const auto variant = static_cast<PanelVariant>(state.range(0));
  PanelFixture f(static_cast<index_t>(state.range(1)), 64);
  for (auto _ : state) {
    Csc work = f.b_upper;
    tstrf(variant, f.diag, work, f.ws).check();
    benchmark::DoNotOptimize(work.values().data());
  }
  state.SetLabel("TSTRF_" + to_string(variant));
}
BENCHMARK(BM_Tstrf)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {64, 192}})
    ->Unit(benchmark::kMicrosecond);

// Density sweep (third argument, percent): the merge kernels are predicted
// to win the band where A's columns and C's column have comparable lengths;
// Direct amortises its slot registration only above it, bin-search only
// below.
void BM_Ssssm(benchmark::State& state) {
  const auto variant = static_cast<SsssmVariant>(state.range(0));
  const auto n = static_cast<index_t>(state.range(1));
  const double d = static_cast<double>(state.range(2)) / 100.0;
  Csc a = matgen::random_rect(n, n, d, 3);
  Csc b = matgen::random_rect(n, n, d, 4);
  Csc c = matgen::random_rect(n, n, std::min(0.5, 2.5 * d), 5);
  Workspace ws;
  for (auto _ : state) {
    Csc work = c;
    ssssm(variant, a, b, work, ws).check();
    benchmark::DoNotOptimize(work.values().data());
  }
  state.SetLabel(to_string(variant));
  state.counters["flops"] = ssssm_flops(a, b);
}
BENCHMARK(BM_Ssssm)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {64, 192}, {2, 8, 20}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
