// Checkpoint/restart overhead harness: measures (a) the wall-clock cost of
// writing one snapshot and of a resume's restore path versus matrix size, and
// (b) the end-to-end overhead of factorising with checkpointing armed at the
// default cadence versus a bare factorisation.
//
// Doubles as the perf smoke for `ctest -L perf`: the harness exits non-zero
// when default-cadence checkpointing costs more than the overhead guard
// (5% of factorisation wall time by default; PANGULU_CHECKPOINT_GUARD
// overrides). Emits BENCH_checkpoint.json through the JsonReporter.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "io/snapshot.hpp"
#include "solver/solver.hpp"

using namespace pangulu;

namespace {

double factorize_seconds(const Csc& a, const solver::Options& opts,
                         solver::Solver* out) {
  Timer t;
  out->factorize(a, opts).check();
  return t.seconds();
}

}  // namespace

int main() {
  const double scale = bench::bench_scale();
  const int reps = 7;
  double guard = 0.05;
  if (const char* g = std::getenv("PANGULU_CHECKPOINT_GUARD")) {
    const double v = std::atof(g);
    if (v > 0) guard = v;
  }

  std::cout << "Checkpoint/restart overhead, scale=" << scale
            << ", guard=" << guard * 100 << "%\n";

  bench::JsonReporter json;
  json.meta("bench", "checkpoint");
  json.meta("scale", scale);
  json.meta("reps", static_cast<double>(reps));
  json.meta("overhead_guard", guard);

  TextTable table({"matrix", "n", "tasks", "factor_s", "ckpt_factor_s",
                   "overhead_%", "abft_%", "snapshot_s", "resume_restore_s",
                   "snap_MB"});

  bool guard_ok = true;
  for (const char* name : {"ASIC_680k", "Si87H76", "ecology1"}) {
    Csc a = matgen::paper_matrix(name, scale);
    // Snapshots go to scratch storage (as they would on a cluster node), so
    // the guard measures checkpointing, not the working directory's
    // filesystem.
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("BENCH_checkpoint_" + std::string(name) + ".snap"))
            .string();

    solver::Options bare;
    bare.n_ranks = 4;

    // Default cadence (interval 0 -> ceil(n_tasks/4), snapshots at
    // ~25/50/75%), checkpointing only: ABFT is a separate knob with its own
    // cost and its own column, so the guard isolates what the snapshots
    // themselves cost.
    solver::Options ck = bare;
    ck.checkpoint_path = path;

    // ABFT audit cost at the cheap level, reported alongside (not guarded:
    // audits scale with kernel reads, not with the checkpoint cadence).
    solver::Options ab = bare;
    ab.abft_level = runtime::AbftLevel::kCheap;

    // Interleave the three configurations rep by rep and keep each one's
    // best: machine-load drift between early and late reps would otherwise
    // swamp a few-percent overhead delta. The bare baseline's own rep
    // spread is the measurement noise floor — a delta below it is not a
    // measurable regression, so the effective bound is max(guard, spread).
    solver::Solver clean, guarded, audited;
    double factor_s = 1e300, bare_worst = 0;
    double ckpt_factor_s = 1e300, abft_factor_s = 1e300;
    for (int r = 0; r < reps; ++r) {
      const double b = factorize_seconds(a, bare, &clean);
      factor_s = std::min(factor_s, b);
      bare_worst = std::max(bare_worst, b);
      ckpt_factor_s = std::min(ckpt_factor_s, factorize_seconds(a, ck, &guarded));
      abft_factor_s =
          std::min(abft_factor_s, factorize_seconds(a, ab, &audited));
    }
    const auto n_tasks = static_cast<double>(clean.stats().n_tasks);
    const double overhead =
        factor_s > 0 ? (ckpt_factor_s - factor_s) / factor_s : 0.0;
    const double abft_overhead =
        factor_s > 0 ? (abft_factor_s - factor_s) / factor_s : 0.0;
    const double noise =
        factor_s > 0 ? (bare_worst - factor_s) / factor_s : 0.0;
    const double bound = std::max(guard, noise);

    // The guarded run leaves its last mid-flight snapshot on disk — unless
    // the worthiness floor decided the whole run was too small to be worth
    // checkpointing. Force one mid-run snapshot with an explicit interval in
    // that case, so the write/restore timings below always have a subject.
    if (!std::ifstream(path).good()) {
      solver::Options one = bare;
      one.checkpoint_path = path;
      one.checkpoint_interval_tasks = std::max<index_t>(
          1, static_cast<index_t>(clean.stats().n_tasks / 2));
      solver::Solver forced;
      forced.factorize(a, one).check();
    }

    // Re-reading the snapshot times the restore path, re-writing it times
    // one isolated snapshot write, and its encoded size is what a
    // checkpoint costs on disk.
    io::Snapshot snap;
    Timer t;
    io::read_snapshot_file(path, &snap).check();
    const double restore_s = t.seconds();
    double snap_bytes = 0;
    {
      std::ostringstream os;
      io::write_snapshot(os, snap).check();
      snap_bytes = static_cast<double>(os.str().size());
    }
    t.reset();
    io::write_snapshot_file(path, snap).check();
    const double snapshot_s = t.seconds();
    std::remove(path.c_str());

    const bool ok = overhead <= bound;
    guard_ok = guard_ok && ok;
    table.add_row({name, std::to_string(a.n_cols()),
                   std::to_string(static_cast<long long>(n_tasks)),
                   TextTable::fmt(factor_s), TextTable::fmt(ckpt_factor_s),
                   TextTable::fmt(overhead * 100.0),
                   TextTable::fmt(abft_overhead * 100.0),
                   TextTable::fmt(snapshot_s), TextTable::fmt(restore_s),
                   TextTable::fmt(snap_bytes / (1024.0 * 1024.0))});
    json.begin_row();
    json.field("matrix", name);
    json.field("n", static_cast<double>(a.n_cols()));
    json.field("tasks", n_tasks);
    json.field("factor_seconds", factor_s);
    json.field("checkpointed_factor_seconds", ckpt_factor_s);
    json.field("overhead_fraction", overhead);
    json.field("abft_overhead_fraction", abft_overhead);
    json.field("noise_fraction", noise);
    json.field("snapshot_write_seconds", snapshot_s);
    json.field("resume_restore_seconds", restore_s);
    json.field("snapshot_bytes", snap_bytes);
    json.field("guard_ok", ok ? 1.0 : 0.0);
    if (!ok) {
      std::cout << "GUARD: " << name << " checkpoint overhead "
                << overhead * 100.0 << "% exceeds " << bound * 100.0
                << "% (guard " << guard * 100.0 << "%, measurement noise "
                << noise * 100.0 << "%)\n";
    } else if (noise > guard) {
      std::cout << "note: " << name << " baseline noise " << noise * 100.0
                << "% exceeds the " << guard * 100.0
                << "% guard; bounding by noise\n";
    }
  }

  table.print(std::cout);
  if (!json.write_file("BENCH_checkpoint.json"))
    std::cout << "warning: could not write BENCH_checkpoint.json\n";

  if (!guard_ok) {
    std::cout << "FAIL: checkpoint overhead guard breached\n";
    return 1;
  }
  std::cout << "OK: default-cadence checkpointing within the " << guard * 100.0
            << "% overhead guard\n";
  return 0;
}
