// Figure 3: uneven size distribution of supernode blocks. The paper shows a
// rows x cols heat-map of supernode counts for G3_circuit and audikw_1 —
// G3_circuit's supernodes are small and skewed, audikw_1's are much larger.
// We reproduce the same bucketed counts on the structural stand-ins.
#include <iostream>

#include "bench_common.hpp"
#include "symbolic/supernodes.hpp"
#include "util/histogram.hpp"

using namespace pangulu;

namespace {

void report(const std::string& name, double scale) {
  bench::PreparedMatrix p = bench::prepare(name, scale);
  auto part = symbolic::detect_supernodes(p.symbolic.filled, /*relax=*/2,
                                          /*max_cols=*/256);
  // Bucket edges mirror the paper's axes.
  std::vector<double> row_edges = {1, 2, 4, 8, 16, 32, 64, 128, 1 << 20};
  std::vector<double> col_edges = {1, 2, 4, 8, 16, 32, 64, 128, 257};
  Histogram2D h(row_edges, col_edges);
  for (const auto& sn : part.supernodes)
    h.add(static_cast<double>(sn.n_rows), static_cast<double>(sn.n_cols));

  std::cout << "\n=== Figure 3 (" << name << "): supernode rows x cols counts ==="
            << "\nn=" << p.a.n_cols() << " nnz(L+U)=" << p.symbolic.nnz_lu
            << " supernodes=" << part.supernodes.size() << '\n';
  std::cout << "rows\\cols ";
  const char* col_labels[] = {"[1,2)",   "[2,4)",   "[4,8)",    "[8,16)",
                              "[16,32)", "[32,64)", "[64,128)", "[128,256]"};
  const char* row_labels[] = {"[1,2)",   "[2,4)",   "[4,8)",    "[8,16)",
                              "[16,32)", "[32,64)", "[64,128)", "[128,+)"};
  for (auto* c : col_labels) std::cout << c << '\t';
  std::cout << '\n';
  for (std::size_t r = 0; r < 8; ++r) {
    std::cout << row_labels[r] << '\t';
    for (std::size_t c = 0; c < 8; ++c) std::cout << h.count(r, c) << '\t';
    std::cout << '\n';
  }
  // Summary statistic: the paper's point is the spread of sizes.
  index_t max_rows = 0, max_cols = 0;
  for (const auto& sn : part.supernodes) {
    max_rows = std::max(max_rows, sn.n_rows);
    max_cols = std::max(max_cols, sn.n_cols);
  }
  std::cout << "max supernode: " << max_rows << " rows x " << max_cols
            << " cols; padding nnz introduced by relax=2: "
            << part.total_padding << '\n';
}

}  // namespace

int main() {
  const double scale = bench::bench_scale();
  std::cout << "Reproducing Figure 3 (supernode size heat-maps), scale="
            << scale << '\n';
  report("G3_circuit", scale);
  report("audikw_1", scale);
  std::cout << "\nExpected shape (paper): G3_circuit concentrates in small "
               "supernodes (rows in [4,64), cols in [1,32)); audikw_1 in much "
               "larger ones (rows in [32,512), cols in [2,32)).\n";
  return 0;
}
