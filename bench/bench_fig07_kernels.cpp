// Figure 7 (and the behaviour behind Figure 8): wall-clock comparison of all
// 17 sparse kernels on sub-matrix blocks harvested from real factorisations.
// The paper plots per-kernel execution time against nnz (GETRF/GESSM/TSTRF)
// or FLOPs (SSSSM); no kernel dominates everywhere, which is what motivates
// the decision trees.
//
// On this host the "G_" kernels run on a thread pool rather than a GPU, so
// absolute crossover points differ from the paper's; the harness reports
// measured times per size bucket for every variant, plus what the Figure 8
// decision trees would have picked.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "kernels/calibrate.hpp"
#include "kernels/getrf.hpp"
#include "kernels/gessm.hpp"
#include "kernels/selector.hpp"
#include "kernels/ssssm.hpp"
#include "kernels/tstrf.hpp"
#include "parallel/thread_pool.hpp"

using namespace pangulu;
using namespace pangulu::kernels;

namespace {

struct Bucketed {
  std::map<int, std::pair<double, int>> by_bucket;  // log10 bucket -> (sum ms, n)
  void add(double size_metric, double ms) {
    int b = size_metric > 0 ? static_cast<int>(std::floor(std::log10(size_metric) * 2))
                            : 0;
    auto& e = by_bucket[b];
    e.first += ms;
    e.second += 1;
  }
};

void print_bucketed(const std::string& title,
                    const std::map<std::string, Bucketed>& data,
                    const char* metric) {
  std::cout << "\n=== " << title << " (mean ms per " << metric
            << " half-decade bucket) ===\n";
  // Collect bucket keys.
  std::map<int, bool> keys;
  for (const auto& [_, b] : data)
    for (const auto& [k, __] : b.by_bucket) keys[k] = true;
  std::vector<std::string> header = {"variant"};
  for (const auto& [k, _] : keys) {
    header.push_back("1e" + TextTable::fmt(k / 2.0, 1));
  }
  TextTable t(header);
  for (const auto& [name, b] : data) {
    std::vector<std::string> row = {name};
    for (const auto& [k, _] : keys) {
      auto it = b.by_bucket.find(k);
      row.push_back(it == b.by_bucket.end()
                        ? "-"
                        : TextTable::fmt(it->second.first / it->second.second, 3));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  const double scale = bench::bench_scale();
  ThreadPool pool;  // the "device" for G_ kernels
  std::cout << "Reproducing Figure 7 (kernel performance), scale=" << scale
            << "; G_ kernels on " << pool.size() << " host threads\n";

  // Harvest blocks from a mix of matrix classes.
  std::vector<std::string> sources = {"ecology1", "ASIC_680k", "audikw_1",
                                      "Si87H76"};
  std::map<std::string, Bucketed> getrf_data, gessm_data, tstrf_data,
      ssssm_data;
  std::map<std::string, int> tree_picks;
  std::vector<PairedSample> getrf_samples;  // CPU-vs-best-GPU crossover refit
  int harvested_diag = 0, harvested_panel = 0, harvested_update = 0;

  for (const auto& name : sources) {
    bench::PreparedMatrix p = bench::prepare(name, scale);
    block::BlockMatrix& bm = p.blocks;
    Workspace ws;

    // Diagonal blocks: GETRF inputs (restored per variant from the original).
    for (index_t k = 0; k < bm.nb(); ++k) {
      const nnz_t dpos = bm.find_block(k, k);
      const Csc& orig = bm.block(dpos);
      tree_picks[to_string(select_getrf(orig.nnz()))]++;
      double t_cpu = 0, t_gpu = 1e300;
      for (auto v : {GetrfVariant::kCV1, GetrfVariant::kGV1, GetrfVariant::kGV2}) {
        Csc work = orig;
        Timer t;
        getrf(v, work, ws, nullptr, {}, &pool).check();
        const double ms = t.milliseconds();
        getrf_data[to_string(v)].add(static_cast<double>(orig.nnz()), ms);
        if (v == GetrfVariant::kCV1)
          t_cpu = ms;
        else
          t_gpu = std::min(t_gpu, ms);
      }
      getrf_samples.push_back(
          {static_cast<double>(orig.nnz()), t_cpu, t_gpu});
      ++harvested_diag;

      // Factorise in place so panel harvests below see a real LU diag.
      getrf(GetrfVariant::kCV1, bm.block(dpos), ws, nullptr).check();

      // Panel blocks in row/col k (only the first elimination step state is
      // exercised: representative of kernel-level behaviour).
      for (nnz_t rp = bm.row_begin(k); rp < bm.row_end(k); ++rp) {
        const index_t bj = bm.row_block_col(rp);
        if (bj <= k || harvested_panel > 4000) continue;
        const Csc& b0 = bm.block(bm.row_block_pos(rp));
        tree_picks["GESSM_" + to_string(select_gessm(
                                  b0.nnz(), bm.block(dpos).nnz()))]++;
        for (auto v : {PanelVariant::kCV1, PanelVariant::kCV2, PanelVariant::kGV1,
                       PanelVariant::kGV2, PanelVariant::kGV3}) {
          Csc work = b0;
          Timer t;
          gessm(v, bm.block(dpos), work, ws, &pool).check();
          gessm_data["GESSM_" + to_string(v)].add(
              static_cast<double>(b0.nnz()), t.milliseconds());
        }
        ++harvested_panel;
      }
      for (nnz_t cp = bm.col_begin(k); cp < bm.col_end(k); ++cp) {
        const index_t bi = bm.block_row(cp);
        if (bi <= k || harvested_panel > 8000) continue;
        const Csc& b0 = bm.block(cp);
        tree_picks["TSTRF_" + to_string(select_tstrf(
                                  b0.nnz(), bm.block(dpos).nnz()))]++;
        for (auto v : {PanelVariant::kCV1, PanelVariant::kCV2, PanelVariant::kGV1,
                       PanelVariant::kGV2, PanelVariant::kGV3}) {
          Csc work = b0;
          Timer t;
          tstrf(v, bm.block(dpos), work, ws, &pool).check();
          tstrf_data["TSTRF_" + to_string(v)].add(
              static_cast<double>(b0.nnz()), t.milliseconds());
        }
        ++harvested_panel;
      }
    }

    // Schur triples from the task list.
    for (const auto& task : p.tasks) {
      if (task.kind != block::TaskKind::kSsssm) continue;
      if (harvested_update > 3000) break;
      const Csc& a = bm.block(task.src_a);
      const Csc& b = bm.block(task.src_b);
      tree_picks[to_string(select_ssssm(task.weight))]++;
      for (auto v : {SsssmVariant::kCV1, SsssmVariant::kCV2, SsssmVariant::kGV1,
                     SsssmVariant::kGV2}) {
        Csc work = bm.block(task.target);
        Timer t;
        ssssm(v, a, b, work, ws, &pool).check();
        ssssm_data[to_string(v)].add(task.weight, t.milliseconds());
      }
      ++harvested_update;
    }
  }

  std::cout << "harvested: " << harvested_diag << " GETRF blocks, "
            << harvested_panel << " panel blocks, " << harvested_update
            << " Schur triples\n";
  print_bucketed("GETRF time vs nnz(A)", getrf_data, "nnz");
  print_bucketed("GESSM time vs nnz(B)", gessm_data, "nnz");
  print_bucketed("TSTRF time vs nnz(B)", tstrf_data, "nnz");
  print_bucketed("SSSSM time vs FLOPs", ssssm_data, "FLOPs");

  std::cout << "\n=== Figure 8 decision-tree picks over the harvested blocks ===\n";
  TextTable t({"kernel choice", "count"});
  for (const auto& [k, c] : tree_picks) t.add_row({k, std::to_string(c)});
  t.print(std::cout);

  // Refit the GETRF CPU/GPU crossover from the measured samples — the
  // calibration step the paper ran to place its 1e3.8 nnz cut-point. On this
  // host the "GPU" is a thread pool, so the fitted cut differs from the
  // paper's; the harness reports both.
  if (!getrf_samples.empty()) {
    const double fitted = kernels::fit_crossover(getrf_samples);
    const double fitted_cost = kernels::policy_cost(getrf_samples, fitted);
    const double paper_cost =
        kernels::policy_cost(getrf_samples, SelectorThresholds{}.getrf_cpu_nnz);
    std::cout << "\nGETRF CPU/GPU crossover refit on this host: nnz ~ "
              << fitted << " (paper tree: 1e3.8 ~ 6310); total kernel time "
              << TextTable::fmt(fitted_cost, 2) << " ms refit vs "
              << TextTable::fmt(paper_cost, 2) << " ms with paper thresholds\n";
  }
  std::cout << "\nExpected shape (paper): no variant wins everywhere — CPU "
               "kernels lead on tiny blocks, bin-search GPU kernels mid-range, "
               "dense-mapping GPU kernels on the largest work.\n";
  return 0;
}
