// Figure 4: density distribution of the matrices involved in the supernodal
// baseline's GEMM updates (C = A*B). The paper's point: on irregular
// matrices (ASIC_680k) the operand tiles are nearly empty, so dense BLAS
// wastes flops; on audikw_1 they are nearly full.
#include <iostream>

#include "baseline/supernodal.hpp"
#include "bench_common.hpp"
#include "util/histogram.hpp"

using namespace pangulu;

namespace {

void report(const std::string& name, double scale) {
  Csc a = matgen::paper_matrix(name, scale);
  baseline::SupernodalOptions opts;
  opts.record_gemm_density = true;
  opts.execute_numerics = true;  // densities are measured on real values
  baseline::SupernodalSolver s;
  s.factorize(a, opts).check();

  Histogram ha = Histogram::percent10();
  Histogram hb = Histogram::percent10();
  Histogram hc = Histogram::percent10();
  for (const auto& g : s.stats().gemm_density) {
    ha.add(g.a);
    hb.add(g.b);
    hc.add(g.c);
  }
  const double total =
      std::max<double>(1.0, static_cast<double>(s.stats().gemm_density.size()));

  std::cout << "\n=== Figure 4 (" << name << "): GEMM operand density (% of "
            << "GEMMs per density decile) ===\n";
  TextTable t({"density", "Matrix A (%)", "Matrix B (%)", "Matrix C (%)"});
  for (std::size_t b = 0; b < 10; ++b) {
    t.add_row({ha.label(b), TextTable::fmt(100.0 * ha.count(b) / total, 1),
               TextTable::fmt(100.0 * hb.count(b) / total, 1),
               TextTable::fmt(100.0 * hc.count(b) / total, 1)});
  }
  t.print(std::cout);
  std::cout << "GEMM updates recorded: " << s.stats().gemm_density.size()
            << '\n';
}

}  // namespace

int main() {
  // Density structure only emerges at realistic sizes; default to full-size
  // stand-ins (env PANGULU_BENCH_SCALE overrides).
  const double scale =
      std::getenv("PANGULU_BENCH_SCALE") ? bench::bench_scale() : 1.0;
  std::cout << "Reproducing Figure 4 (GEMM density distributions), scale="
            << scale << '\n';
  for (const char* name : {"CoupCons3D", "ASIC_680k", "audikw_1"})
    report(name, scale);
  std::cout << "\nExpected shape (paper): ASIC_680k concentrated in [0,10)%, "
               "audikw_1 in [90,100]%, CoupCons3D spread with a large share "
               "under 50%.\n";
  return 0;
}
