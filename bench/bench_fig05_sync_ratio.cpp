// Figure 5: ratio of synchronisation time to numeric factorisation time of
// the level-set (SuperLU_DIST-style) baseline as the process count grows.
// The paper shows the ratio climbing towards ~60% at 64 processes on six
// matrices — the motivation for the sync-free strategy.
#include <iostream>

#include "baseline/supernodal.hpp"
#include "bench_common.hpp"

using namespace pangulu;

int main() {
  const double scale = bench::bench_scale();
  const std::vector<std::string> matrices = {
      "Si87H76", "ASIC_680k", "nlpkkt80", "CoupCons3D", "dielFilterV3real",
      "ecology1"};
  const std::vector<rank_t> procs = {1, 2, 4, 8, 16, 32, 64};

  std::cout << "Reproducing Figure 5 (baseline sync/numeric ratio %), scale="
            << scale << '\n';
  std::vector<std::string> header = {"matrix"};
  for (rank_t p : procs) header.push_back(std::to_string(p) + "-proc");
  TextTable t(header);

  for (const auto& name : matrices) {
    Csc a = matgen::paper_matrix(name, scale);
    baseline::SupernodalOptions opts;
    opts.execute_numerics = false;  // timing model only
    baseline::SupernodalSolver s;
    s.factorize(a, opts).check();
    std::vector<std::string> row = {name};
    for (rank_t p : procs) {
      runtime::SimResult sim;
      s.retime(p, opts.device, &sim).check();
      const double ratio =
          sim.makespan > 0 ? 100.0 * sim.avg_sync / sim.makespan : 0.0;
      row.push_back(TextTable::fmt(ratio, 1));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "\nExpected shape (paper): ratio grows with process count, "
               "reaching tens of percent at 64 processes.\n";
  return 0;
}
