// Figure 12: numeric factorisation GFLOPS of PanguLU vs the supernodal
// baseline from 1 to 128 simulated GPUs, on the A100-like and MI50-like
// device models. The paper's headline: PanguLU wins 2.53x/2.79x geomean
// (up to 11.70x/17.97x on ASIC_680k) and scales to 47x/74x on 128 GPUs.
#include <iostream>

#include "baseline/supernodal.hpp"
#include "bench_common.hpp"

using namespace pangulu;

namespace {

// GFLOPS accounted on useful (sparse) flops, as the paper normalises both
// solvers by the same operation count. The baseline is factorised once per
// matrix; rank/device sweeps go through retime().
double baseline_gflops(baseline::SupernodalSolver& s, rank_t ranks,
                       const runtime::DeviceModel& device) {
  runtime::SimResult res;
  s.retime(ranks, device, &res).check();
  return s.stats().flops_sparse / res.makespan / 1e9;
}

}  // namespace

int main() {
  // Strong scaling needs enough work per rank to be meaningful at 128 ranks;
  // default to full-size stand-ins here (env PANGULU_BENCH_SCALE overrides).
  const double scale =
      std::getenv("PANGULU_BENCH_SCALE") ? bench::bench_scale() : 1.0;
  const std::vector<rank_t> gpus = {1, 2, 4, 8, 16, 32, 64, 128};
  std::cout << "Reproducing Figure 12 (scaling, GFLOPS), scale=" << scale
            << '\n';

  const auto a100 = runtime::DeviceModel::a100_like();
  const auto mi50 = runtime::DeviceModel::mi50_like();

  std::vector<double> speedup_a100, speedup_mi50, scalability;
  double best_scal = 0;
  std::string best_scal_name;
  for (const auto& name : bench::bench_matrices()) {
    bench::PreparedMatrix p = bench::prepare(name, scale);
    Csc a = p.a;

    baseline::SupernodalOptions bopts;
    bopts.execute_numerics = false;
    baseline::SupernodalSolver base;
    base.factorize(a, bopts).check();

    std::cout << "\n--- " << name << " (n=" << a.n_cols()
              << ", nnz(L+U)=" << p.symbolic.nnz_lu << ") ---\n";
    TextTable t({"GPUs", "baseline(A100)", "PanguLU(A100)", "baseline(MI50)",
                 "PanguLU(MI50)"});
    double pangu_a100_1 = 0, pangu_a100_128 = 0;
    for (rank_t g : gpus) {
      auto pa = bench::run_sim(p, g, a100, runtime::KernelPolicy::kAdaptive,
                               runtime::ScheduleMode::kSyncFree);
      auto pm = bench::run_sim(p, g, mi50, runtime::KernelPolicy::kAdaptive,
                               runtime::ScheduleMode::kSyncFree);
      const double gf_pa = p.symbolic.nnz_lu > 0
                               ? symbolic::factorization_flops(p.symbolic.filled) /
                                     pa.makespan / 1e9
                               : 0;
      const double gf_pm =
          symbolic::factorization_flops(p.symbolic.filled) / pm.makespan / 1e9;
      const double gf_ba = baseline_gflops(base, g, a100);
      const double gf_bm = baseline_gflops(base, g, mi50);
      if (g == 1) pangu_a100_1 = gf_pa;
      if (g == 128) {
        pangu_a100_128 = gf_pa;
        speedup_a100.push_back(gf_pa / gf_ba);
        speedup_mi50.push_back(gf_pm / gf_bm);
      }
      t.add_row({std::to_string(g), TextTable::fmt(gf_ba, 2),
                 TextTable::fmt(gf_pa, 2), TextTable::fmt(gf_bm, 2),
                 TextTable::fmt(gf_pm, 2)});
    }
    t.print(std::cout);
    if (pangu_a100_1 > 0) {
      const double s128 = pangu_a100_128 / pangu_a100_1;
      scalability.push_back(s128);
      if (s128 > best_scal) {
        best_scal = s128;
        best_scal_name = name;
      }
    }
  }

  std::cout << "\nSummary @128 GPUs: PanguLU vs baseline geomean speedup "
            << TextTable::fmt_speedup(geomean(speedup_a100)) << " (A100-like), "
            << TextTable::fmt_speedup(geomean(speedup_mi50))
            << " (MI50-like); paper reports 2.53x and 2.79x.\n";
  std::cout << "PanguLU self-scalability 1 -> 128 GPUs (A100-like), geomean: "
            << TextTable::fmt_speedup(geomean(scalability)) << ", best "
            << TextTable::fmt_speedup(best_scal) << " (" << best_scal_name
            << "); the paper's 47.51x/74.84x are likewise best-case, on "
               "matrices 100-1000x larger than these stand-ins.\n";
  return 0;
}
