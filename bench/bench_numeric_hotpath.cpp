// Numeric hot-path regression harness: times an SSSSM-dominated workload
// with the pre-PR Direct-addressing accumulator (dense scratch column,
// reproduced locally below) against the stamped sparse accumulator that
// replaced it, plus the bin-search and merge kernels for context. Prints a
// table, writes BENCH_numeric_hotpath.json, and exits non-zero when the
// stamped/legacy speedup falls below the guard (PANGULU_PERF_GUARD, default
// 1.05 — generous so the ctest `perf` label only trips on real regressions;
// the PR's acceptance target on a quiet machine is >= 1.3x).
#include <algorithm>
#include <cstdlib>
#include <limits>
#include <vector>

#include "bench_common.hpp"
#include "kernels/ssssm.hpp"
#include "matgen/generators.hpp"

using namespace pangulu;

namespace {

/// The pre-PR Direct inner loop, kept verbatim as the baseline: zero an
/// O(n_rows) dense scratch, scatter C(:,j) into it, accumulate the products
/// densely, gather back. The stamped accumulator replaced exactly this.
void legacy_column_direct(const Csc& a, const Csc& b, Csc& c, index_t j,
                          std::vector<value_t>& dense) {
  std::fill(dense.begin(), dense.end(), value_t(0));
  auto crows = c.row_idx();
  auto cvals = c.values_mut();
  const nnz_t cb = c.col_begin(j), ce = c.col_end(j);
  for (nnz_t p = cb; p < ce; ++p)
    dense[static_cast<std::size_t>(crows[static_cast<std::size_t>(p)])] =
        cvals[static_cast<std::size_t>(p)];
  for (nnz_t q = b.col_begin(j); q < b.col_end(j); ++q) {
    const index_t k = b.row_idx()[static_cast<std::size_t>(q)];
    const value_t bkj = b.values()[static_cast<std::size_t>(q)];
    if (bkj == value_t(0)) continue;
    for (nnz_t p = a.col_begin(k); p < a.col_end(k); ++p) {
      dense[static_cast<std::size_t>(
          a.row_idx()[static_cast<std::size_t>(p)])] -=
          a.values()[static_cast<std::size_t>(p)] * bkj;
    }
  }
  for (nnz_t p = cb; p < ce; ++p)
    cvals[static_cast<std::size_t>(p)] =
        dense[static_cast<std::size_t>(crows[static_cast<std::size_t>(p)])];
}

struct Triple {
  Csc a, b, c;
};

double guard_value() {
  if (const char* s = std::getenv("PANGULU_PERF_GUARD")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.05;
}

}  // namespace

int main() {
  // Large hyper-sparse blocks: the regime the stamped accumulator targets.
  // Per column the legacy path zeroes and re-reads an n-entry dense scratch
  // while the real work is a handful of flops, so the O(n_rows) traffic
  // dominates — exactly what early-factorisation Schur blocks look like.
  const index_t n = 2048;
  const auto n_triples = static_cast<std::size_t>(
      std::max(4.0, 8.0 * pangulu::bench::bench_scale()));
  const int repeats = 9;
  const double da = 0.002, db = 0.002, dc = 0.006;

  std::vector<Triple> triples;
  for (std::size_t i = 0; i < n_triples; ++i) {
    const auto seed = static_cast<std::uint64_t>(100 + 3 * i);
    triples.push_back({matgen::random_rect(n, n, da, seed),
                       matgen::random_rect(n, n, db, seed + 1),
                       matgen::random_rect(n, n, dc, seed + 2)});
  }

  // min-of-repeats over the whole workload; the C copies stay untimed.
  std::vector<Csc> work(triples.size());
  auto time_workload = [&](auto&& body) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < repeats; ++rep) {
      for (std::size_t i = 0; i < triples.size(); ++i) work[i] = triples[i].c;
      Timer t;
      for (std::size_t i = 0; i < triples.size(); ++i)
        body(triples[i].a, triples[i].b, work[i]);
      best = std::min(best, t.seconds());
    }
    return best;
  };

  std::vector<value_t> dense(static_cast<std::size_t>(n));
  const double legacy_s = time_workload([&](const Csc& a, const Csc& b,
                                            Csc& c) {
    for (index_t j = 0; j < c.n_cols(); ++j)
      legacy_column_direct(a, b, c, j, dense);
  });
  std::vector<Csc> legacy_result = work;

  kernels::Workspace ws;
  const double stamped_s = time_workload([&](const Csc& a, const Csc& b,
                                             Csc& c) {
    kernels::ssssm(kernels::SsssmVariant::kCV1, a, b, c, ws).check();
  });
  // Both paths must produce identical values (the stamped rewrite is
  // bit-compatible); a mismatch means the benchmark is comparing wrong code.
  for (std::size_t i = 0; i < work.size(); ++i) {
    for (std::size_t p = 0; p < work[i].values().size(); ++p) {
      const double diff =
          std::abs(work[i].values()[p] - legacy_result[i].values()[p]);
      if (diff > 1e-12) {
        std::cerr << "FAIL: stamped result diverges from legacy baseline\n";
        return 2;
      }
    }
  }

  const double binsearch_s = time_workload([&](const Csc& a, const Csc& b,
                                               Csc& c) {
    kernels::ssssm(kernels::SsssmVariant::kCV2, a, b, c, ws).check();
  });
  const double merge_s = time_workload([&](const Csc& a, const Csc& b,
                                           Csc& c) {
    kernels::ssssm(kernels::SsssmVariant::kCV3, a, b, c, ws).check();
  });

  const double speedup = legacy_s / stamped_s;
  const double guard = guard_value();

  std::cout << "numeric hot path (SSSSM-dominated, n=" << n << ", "
            << n_triples << " block triples, min of " << repeats
            << " repeats)\n";
  std::cout << "  legacy dense-scratch direct : " << legacy_s * 1e3 << " ms\n";
  std::cout << "  stamped direct (C_V1)       : " << stamped_s * 1e3
            << " ms\n";
  std::cout << "  bin-search (C_V2)           : " << binsearch_s * 1e3
            << " ms\n";
  std::cout << "  merge (C_V3)                : " << merge_s * 1e3 << " ms\n";
  std::cout << "  stamped speedup over legacy : " << speedup << "x (guard "
            << guard << "x)\n";

  pangulu::bench::JsonReporter json;
  json.meta("bench", "numeric_hotpath");
  json.meta("n", static_cast<double>(n));
  json.meta("triples", static_cast<double>(n_triples));
  json.meta("repeats", static_cast<double>(repeats));
  json.meta("density_a", da);
  json.meta("density_b", db);
  json.meta("density_c", dc);
  json.meta("speedup_stamped_over_legacy", speedup);
  json.meta("guard", guard);
  auto row = [&](const std::string& name, double seconds) {
    json.begin_row();
    json.field("kernel", name);
    json.field("seconds", seconds);
  };
  row("legacy_dense_scratch_direct", legacy_s);
  row("stamped_direct_cv1", stamped_s);
  row("binsearch_cv2", binsearch_s);
  row("merge_cv3", merge_s);
  if (!json.write_file("BENCH_numeric_hotpath.json")) {
    std::cerr << "FAIL: could not write BENCH_numeric_hotpath.json\n";
    return 2;
  }

  if (speedup < guard) {
    std::cerr << "FAIL: stamped accumulator speedup " << speedup
              << "x below guard " << guard << "x\n";
    return 1;
  }
  return 0;
}
