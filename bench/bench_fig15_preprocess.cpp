// Figure 15: preprocessing time — the baseline's supernode/panel setup vs
// PanguLU's 2D blocking + mapping + balancing. Paper: PanguLU 1.61x faster
// on average (max 3.16x), slightly slower on a couple of matrices where the
// 2D block layout conversion dominates.
#include <iostream>

#include "baseline/supernodal.hpp"
#include "bench_common.hpp"
#include "solver/solver.hpp"

using namespace pangulu;

int main() {
  const double scale = bench::bench_scale();
  const rank_t ranks = 128;
  std::cout << "Reproducing Figure 15 (preprocessing time), scale=" << scale
            << '\n';
  TextTable t({"matrix", "baseline (s)", "PanguLU (s)", "speedup"});
  std::vector<double> speedups;

  const auto device = runtime::DeviceModel::a100_like();
  // Preprocessing ends with distributing the factor structures from the
  // input rank to the process grid ("sends them to each process", §4.1);
  // the baseline ships dense panels (padding included), PanguLU ships
  // sparse blocks. Modeled as serialized sends over the cluster network.
  auto dist_time = [&](double payload_bytes) {
    return payload_bytes * (ranks - 1) / ranks / device.net_bandwidth;
  };

  for (const auto& name : bench::bench_matrices()) {
    Csc a = matgen::paper_matrix(name, scale);

    // Baseline preprocessing: supernode relaxation + dense tile build.
    baseline::SupernodalOptions bopts;
    bopts.n_ranks = ranks;
    bopts.execute_numerics = false;
    baseline::SupernodalSolver base;
    base.factorize(a, bopts).check();
    const double t_base =
        base.stats().preprocess_seconds +
        dist_time(8.0 * static_cast<double>(base.stats().nnz_lu_stored));

    // PanguLU preprocessing: blocking + cyclic map + static balancing.
    solver::Options popts;
    popts.n_ranks = ranks;
    solver::Solver pangu;
    pangu.factorize(a, popts).check();
    const double t_pangu =
        pangu.stats().preprocess_seconds +
        dist_time(12.0 * static_cast<double>(pangu.stats().nnz_lu));

    const double speedup = t_pangu > 0 ? t_base / t_pangu : 0;
    speedups.push_back(speedup);
    t.add_row({name, TextTable::fmt(t_base, 4), TextTable::fmt(t_pangu, 4),
               TextTable::fmt_speedup(speedup)});
  }
  t.print(std::cout);
  std::cout << "geomean speedup: " << TextTable::fmt_speedup(geomean(speedups))
            << " (paper: 1.61x average, max 3.16x, with a couple of matrices "
               "below 1x)\n";
  return 0;
}
