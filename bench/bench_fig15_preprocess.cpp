// Figure 15: preprocessing time — the baseline's supernode/panel setup vs
// PanguLU's 2D blocking + mapping + balancing. Paper: PanguLU 1.61x faster
// on average (max 3.16x), slightly slower on a couple of matrices where the
// 2D block layout conversion dominates.
//
// The PanguLU column is broken down per phase (symbolic, blocking, mapping,
// solve-plan construction) from the solver's FactorStats, and reported for
// both the serial front-end (preprocess_threads=1) and the threaded one
// (preprocess_threads=0, global pool). Emits BENCH_fig15_preprocess.json.
#include <iostream>

#include "baseline/supernodal.hpp"
#include "bench_common.hpp"
#include "parallel/thread_pool.hpp"
#include "solver/solver.hpp"

using namespace pangulu;

int main() {
  const double scale = bench::bench_scale();
  const rank_t ranks = 128;
  std::cout << "Reproducing Figure 15 (preprocessing time), scale=" << scale
            << '\n';
  TextTable t({"matrix", "baseline (s)", "PanguLU ser (s)", "PanguLU par (s)",
               "symbolic (s)", "blocking (s)", "mapping (s)", "plan (s)",
               "speedup"});
  std::vector<double> speedups;
  std::vector<double> par_speedups;

  bench::JsonReporter json;
  json.meta("bench", "fig15_preprocess");
  json.meta("scale", scale);
  json.meta("ranks", static_cast<double>(ranks));
  json.meta("pool_threads", static_cast<double>(ThreadPool::global().size()));

  const auto device = runtime::DeviceModel::a100_like();
  // Preprocessing ends with distributing the factor structures from the
  // input rank to the process grid ("sends them to each process", §4.1);
  // the baseline ships dense panels (padding included), PanguLU ships
  // sparse blocks. Modeled as serialized sends over the cluster network.
  auto dist_time = [&](double payload_bytes) {
    return payload_bytes * (ranks - 1) / ranks / device.net_bandwidth;
  };

  for (const auto& name : bench::bench_matrices()) {
    Csc a = matgen::paper_matrix(name, scale);

    // Baseline preprocessing: supernode relaxation + dense tile build.
    baseline::SupernodalOptions bopts;
    bopts.n_ranks = ranks;
    bopts.execute_numerics = false;
    baseline::SupernodalSolver base;
    base.factorize(a, bopts).check();
    const double t_base =
        base.stats().preprocess_seconds +
        dist_time(8.0 * static_cast<double>(base.stats().nnz_lu_stored));

    // PanguLU preprocessing, serial front-end reference.
    solver::Options popts;
    popts.n_ranks = ranks;
    popts.preprocess_threads = 1;
    solver::Solver ser;
    ser.factorize(a, popts).check();
    const double t_ser =
        ser.stats().preprocess_seconds +
        dist_time(12.0 * static_cast<double>(ser.stats().nnz_lu));

    // Threaded front-end on the global pool.
    popts.preprocess_threads = 0;
    solver::Solver par;
    par.factorize(a, popts).check();
    const auto& ps = par.stats();
    const double t_par =
        ps.preprocess_seconds +
        dist_time(12.0 * static_cast<double>(ps.nnz_lu));

    const double speedup = t_par > 0 ? t_base / t_par : 0;
    const double par_speedup = t_par > 0 ? t_ser / t_par : 0;
    speedups.push_back(speedup);
    par_speedups.push_back(par_speedup);
    t.add_row({name, TextTable::fmt(t_base, 4), TextTable::fmt(t_ser, 4),
               TextTable::fmt(t_par, 4), TextTable::fmt(ps.symbolic_seconds, 4),
               TextTable::fmt(ps.blocking_seconds, 4),
               TextTable::fmt(ps.mapping_seconds, 4),
               TextTable::fmt(ps.plan_seconds, 4),
               TextTable::fmt_speedup(speedup)});

    json.begin_row();
    json.field("matrix", name);
    json.field("baseline_seconds", t_base);
    json.field("pangulu_serial_seconds", t_ser);
    json.field("pangulu_parallel_seconds", t_par);
    json.field("symbolic_seconds", ps.symbolic_seconds);
    json.field("blocking_seconds", ps.blocking_seconds);
    json.field("mapping_seconds", ps.mapping_seconds);
    json.field("plan_seconds", ps.plan_seconds);
    json.field("speedup_vs_baseline", speedup);
    json.field("parallel_speedup", par_speedup);
  }
  t.print(std::cout);
  std::cout << "geomean speedup: " << TextTable::fmt_speedup(geomean(speedups))
            << " (paper: 1.61x average, max 3.16x, with a couple of matrices "
               "below 1x)\n";
  std::cout << "geomean threaded-front-end speedup: "
            << TextTable::fmt_speedup(geomean(par_speedups)) << " on "
            << ThreadPool::global().size() << " pool threads\n";
  json.meta("geomean_speedup", geomean(speedups));
  json.meta("geomean_parallel_speedup", geomean(par_speedups));
  if (!json.write_file("BENCH_fig15_preprocess.json")) {
    std::cout << "failed to write BENCH_fig15_preprocess.json\n";
    return 1;
  }
  return 0;
}
