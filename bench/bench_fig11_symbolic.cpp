// Figure 11: symbolic factorisation time, SuperLU_DIST-style (unsymmetric
// column-DFS with pruning + supernode detection) vs PanguLU (symmetrised
// pattern + symmetric pruning / etree). The paper reports a 4.45x geometric
// mean speedup for PanguLU, peaking at 6.80x on cage12.
//
// The PanguLU column is reported twice: the serial reference and the
// threaded front-end on the global pool, so the figure doubles as a
// per-phase breakdown of where the parallel symbolic stage gains.
// Emits BENCH_fig11_symbolic.json.
#include <iostream>

#include "bench_common.hpp"
#include "parallel/thread_pool.hpp"
#include "symbolic/supernodes.hpp"

using namespace pangulu;

int main() {
  const double scale = bench::bench_scale();
  std::cout << "Reproducing Figure 11 (symbolic factorisation time), scale="
            << scale << '\n';
  TextTable t({"matrix", "baseline (s)", "PanguLU ser (s)", "PanguLU par (s)",
               "speedup", "par speedup", "baseline nnz(L+U)",
               "PanguLU nnz(L+U)"});
  std::vector<double> speedups;
  std::vector<double> par_speedups;
  std::vector<double> fill_ratio;

  bench::JsonReporter json;
  json.meta("bench", "fig11_symbolic");
  json.meta("scale", scale);
  json.meta("pool_threads",
            static_cast<double>(ThreadPool::global().size()));

  for (const auto& name : bench::bench_matrices()) {
    Csc a = matgen::paper_matrix(name, scale);
    ordering::ReorderResult reorder;
    ordering::reorder(a, {}, &reorder).check();

    // The baseline pays the full column-DFS reach traversal (SuperLU-style
    // symbolic without the symmetric-pruning shortcut PanguLU relies on)
    // plus supernode detection.
    Timer timer;
    symbolic::SymbolicResult unsym;
    symbolic::symbolic_unsymmetric(reorder.permuted, /*use_pruning=*/false,
                                   &unsym)
        .check();
    // Supernode detection is part of the baseline's symbolic stage.
    auto part = symbolic::detect_supernodes(unsym.filled, 2, 256);
    const double t_base = timer.seconds();

    timer.reset();
    symbolic::SymbolicResult sym;
    symbolic::symbolic_symmetric_serial(reorder.permuted, &sym).check();
    const double t_pangu = timer.seconds();

    timer.reset();
    symbolic::SymbolicResult sym_par;
    symbolic::symbolic_symmetric(reorder.permuted, &sym_par).check();
    const double t_pangu_par = timer.seconds();

    const double speedup = t_pangu > 0 ? t_base / t_pangu : 0.0;
    const double par_speedup =
        t_pangu_par > 0 ? t_pangu / t_pangu_par : 0.0;
    speedups.push_back(speedup);
    par_speedups.push_back(par_speedup);
    fill_ratio.push_back(static_cast<double>(sym.nnz_lu) /
                         static_cast<double>(unsym.nnz_lu));
    t.add_row({name, TextTable::fmt(t_base, 4), TextTable::fmt(t_pangu, 4),
               TextTable::fmt(t_pangu_par, 4), TextTable::fmt_speedup(speedup),
               TextTable::fmt_speedup(par_speedup),
               std::to_string(unsym.nnz_lu), std::to_string(sym.nnz_lu)});

    json.begin_row();
    json.field("matrix", name);
    json.field("baseline_seconds", t_base);
    json.field("pangulu_serial_seconds", t_pangu);
    json.field("pangulu_parallel_seconds", t_pangu_par);
    json.field("speedup_vs_baseline", speedup);
    json.field("parallel_speedup", par_speedup);
    json.field("baseline_nnz_lu", static_cast<double>(unsym.nnz_lu));
    json.field("pangulu_nnz_lu", static_cast<double>(sym.nnz_lu));
    (void)part;
  }
  t.print(std::cout);
  std::cout << "geomean speedup: " << TextTable::fmt_speedup(geomean(speedups))
            << "  (paper: 4.45x geomean, max 6.80x)\n";
  std::cout << "geomean threaded-front-end speedup: "
            << TextTable::fmt_speedup(geomean(par_speedups)) << " on "
            << ThreadPool::global().size() << " pool threads\n";
  std::cout << "note: PanguLU symmetrises the pattern, so its fill can exceed "
               "the unsymmetric baseline's on very unsymmetric matrices; the "
               "paper's Table 3 comparison is against supernodal padding, see "
               "bench_table3_stats.\n";
  json.meta("geomean_speedup", geomean(speedups));
  json.meta("geomean_parallel_speedup", geomean(par_speedups));
  if (!json.write_file("BENCH_fig11_symbolic.json")) {
    std::cout << "failed to write BENCH_fig11_symbolic.json\n";
    return 1;
  }
  return 0;
}
