// Table 4: single-GPU kernel time split into panel factorisation
// (GETRF+GESSM+TSTRF) and Schur complement (SSSSM), PanguLU vs the
// supernodal baseline. The paper's point: gathering/scattering into dense
// tiles plus padded dense flops makes the baseline's Schur phase expensive —
// 6.54x geomean total kernel speedup for PanguLU, up to 46.9x on ASIC_680k.
#include <iostream>

#include "baseline/supernodal.hpp"
#include "bench_common.hpp"

using namespace pangulu;

int main() {
  const double scale = bench::bench_scale();
  std::cout << "Reproducing Table 4 (single-GPU kernel time), scale=" << scale
            << '\n';
  TextTable t({"matrix", "base panel(s)", "pangu panel(s)", "base schur(s)",
               "pangu schur(s)", "base all(s)", "pangu all(s)", "speedup"});
  std::vector<double> speedups;

  const auto device = runtime::DeviceModel::a100_like();
  for (const auto& name : bench::bench_matrices()) {
    bench::PreparedMatrix p = bench::prepare(name, scale);

    auto pangu = bench::run_sim(p, 1, device, runtime::KernelPolicy::kAdaptive,
                                runtime::ScheduleMode::kSyncFree);

    baseline::SupernodalOptions bopts;
    bopts.n_ranks = 1;
    bopts.device = device;
    bopts.execute_numerics = false;
    baseline::SupernodalSolver base;
    base.factorize(p.a, bopts).check();
    const auto& bsim = base.stats().sim;

    const double base_all = bsim.panel_busy + bsim.schur_busy;
    const double pangu_all = pangu.panel_busy + pangu.schur_busy;
    const double speedup = pangu_all > 0 ? base_all / pangu_all : 0;
    speedups.push_back(speedup);
    t.add_row({name, TextTable::fmt(bsim.panel_busy, 4),
               TextTable::fmt(pangu.panel_busy, 4),
               TextTable::fmt(bsim.schur_busy, 4),
               TextTable::fmt(pangu.schur_busy, 4),
               TextTable::fmt(base_all, 4), TextTable::fmt(pangu_all, 4),
               TextTable::fmt_speedup(speedup)});
  }
  t.print(std::cout);
  std::cout << "geomean speedup: " << TextTable::fmt_speedup(geomean(speedups))
            << " (paper: 6.54x geomean; largest gains on irregular matrices "
               "like ASIC_680k and cage12)\n";
  return 0;
}
