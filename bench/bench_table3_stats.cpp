// Table 3: the test matrices — order, nnz(A), nnz(L+U) after the baseline's
// symbolic factorisation (dense-panel storage incl. padding) vs PanguLU's
// (sparse blocks, no padding), and PanguLU's numeric FLOPs.
#include <iostream>

#include "baseline/supernodal.hpp"
#include "bench_common.hpp"

using namespace pangulu;

int main() {
  const double scale = bench::bench_scale();
  std::cout << "Reproducing Table 3 (matrix set statistics), scale=" << scale
            << '\n';
  TextTable t({"matrix", "domain", "n", "nnz(A)", "baseline nnz(L+U)",
               "PanguLU nnz(L+U)", "PanguLU FLOPs"});

  for (const auto& name : bench::bench_matrices()) {
    Csc a = matgen::paper_matrix(name, scale);
    auto info = matgen::paper_matrix_info(name);

    baseline::SupernodalOptions bopts;
    bopts.execute_numerics = false;
    baseline::SupernodalSolver base;
    base.factorize(a, bopts).check();

    bench::PreparedMatrix p = bench::prepare(name, scale);
    const double flops = symbolic::factorization_flops(p.symbolic.filled);

    t.add_row({name, info.domain, std::to_string(a.n_cols()),
               std::to_string(a.nnz()),
               std::to_string(base.stats().nnz_lu_stored),
               std::to_string(p.symbolic.nnz_lu), TextTable::fmt_sci(flops)});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape (paper): PanguLU's nnz(L+U) is consistently "
               "below the baseline's padded panel storage (~11% fewer "
               "fill-ins on average in the paper).\n";
  return 0;
}
