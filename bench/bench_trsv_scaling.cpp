// Extension bench: distributed block triangular solve (pipeline step 5).
// The paper's evaluation focuses on numeric factorisation; this harness
// characterises the solve phase on the same simulated cluster — forward and
// backward sweep makespan from 1 to 64 ranks, with the sync-free counter
// scheduling of Liu et al. [58].
//
// Also measures the TrsvPlan cache: the first solve pays schedule
// construction (update lists, counters, priorities), repeat solves reuse the
// plan and only run the event loop. Reports first-call vs repeat-call host
// time per rank count; repeat solves are expected >= 1.5x faster.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "runtime/trsv_sim.hpp"

using namespace pangulu;

int main() {
  const double scale = bench::bench_scale();
  std::cout << "Distributed SpTRSV scaling (extension), scale=" << scale
            << '\n';

  std::vector<double> reuse_ratios;
  bench::JsonReporter json;
  json.meta("bench", "trsv_scaling");
  json.meta("scale", scale);

  for (const char* name : {"ASIC_680k", "Si87H76", "ecology1"}) {
    bench::PreparedMatrix p = bench::prepare(name, scale);
    // Factorise once (1 rank) to get real LU factors for the sweeps.
    block::BlockMatrix bm = p.blocks;
    auto grid1 = block::ProcessGrid::make(1);
    auto map1 = block::cyclic_mapping(bm, grid1);
    runtime::SimOptions fo;
    fo.n_ranks = 1;
    runtime::SimResult fres;
    runtime::simulate_factorization(bm, p.tasks, map1, fo, &fres).check();

    std::cout << "\n--- " << name << " (nnz(L+U)=" << p.symbolic.nnz_lu
              << ") ---\n";
    TextTable t({"ranks", "forward (s)", "backward (s)", "messages",
                 "first call (s)", "repeat call (s)", "reuse speedup"});
    for (rank_t ranks : {1, 2, 4, 8, 16, 32, 64}) {
      auto grid = block::ProcessGrid::make(ranks);
      auto map = block::cyclic_mapping(bm, grid);
      std::vector<value_t> x(static_cast<std::size_t>(p.a.n_cols()), 1.0);
      runtime::TrsvOptions to;
      to.n_ranks = ranks;
      to.execute_numerics = false;

      // First call: schedule construction + event loop (the legacy path).
      Timer timer;
      runtime::TrsvPlan fwd_plan, bwd_plan;
      runtime::build_trsv_plan(bm, map, true, to, &fwd_plan).check();
      runtime::build_trsv_plan(bm, map, false, to, &bwd_plan).check();
      runtime::SimResult fwd, bwd;
      runtime::simulate_trsv(bm, fwd_plan, x, to, &fwd).check();
      runtime::simulate_trsv(bm, bwd_plan, x, to, &bwd).check();
      const double t_first = timer.seconds();

      // Repeat calls reuse the cached plans; best-of-3 absorbs jitter.
      double t_repeat = 1e30;
      for (int rep = 0; rep < 3; ++rep) {
        timer.reset();
        runtime::SimResult f2, b2;
        runtime::simulate_trsv(bm, fwd_plan, x, to, &f2).check();
        runtime::simulate_trsv(bm, bwd_plan, x, to, &b2).check();
        t_repeat = std::min(t_repeat, timer.seconds());
      }
      const double reuse = t_repeat > 0 ? t_first / t_repeat : 0.0;
      reuse_ratios.push_back(reuse);

      t.add_row({std::to_string(ranks), TextTable::fmt_sci(fwd.makespan),
                 TextTable::fmt_sci(bwd.makespan),
                 std::to_string(fwd.messages + bwd.messages),
                 TextTable::fmt(t_first, 4), TextTable::fmt(t_repeat, 4),
                 TextTable::fmt_speedup(reuse)});

      json.begin_row();
      json.field("matrix", name);
      json.field("ranks", static_cast<double>(ranks));
      json.field("forward_makespan", fwd.makespan);
      json.field("backward_makespan", bwd.makespan);
      json.field("messages", static_cast<double>(fwd.messages + bwd.messages));
      json.field("first_call_seconds", t_first);
      json.field("repeat_call_seconds", t_repeat);
      json.field("reuse_speedup", reuse);
    }
    t.print(std::cout);
  }
  const double g = geomean(reuse_ratios);
  json.meta("geomean_reuse_speedup", g);
  std::cout << "\ngeomean plan-reuse speedup (first call / repeat call): "
            << TextTable::fmt_speedup(g) << " (target: >= 1.5x)\n";
  std::cout << "Expected shape: the triangular solve has far less "
               "parallelism than factorisation (critical path of length nb), "
               "so it plateaus at low rank counts.\n";
  if (!json.write_file("BENCH_trsv_scaling.json")) {
    std::cout << "failed to write BENCH_trsv_scaling.json\n";
    return 1;
  }
  return 0;
}
