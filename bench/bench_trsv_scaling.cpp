// Extension bench: distributed block triangular solve (pipeline step 5).
// The paper's evaluation focuses on numeric factorisation; this harness
// characterises the solve phase on the same simulated cluster — forward and
// backward sweep makespan from 1 to 64 ranks, with the sync-free counter
// scheduling of Liu et al. [58].
#include <iostream>

#include "bench_common.hpp"
#include "runtime/trsv_sim.hpp"

using namespace pangulu;

int main() {
  const double scale = bench::bench_scale();
  std::cout << "Distributed SpTRSV scaling (extension), scale=" << scale
            << '\n';

  for (const char* name : {"ASIC_680k", "Si87H76", "ecology1"}) {
    bench::PreparedMatrix p = bench::prepare(name, scale);
    // Factorise once (1 rank) to get real LU factors for the sweeps.
    block::BlockMatrix bm = p.blocks;
    auto grid1 = block::ProcessGrid::make(1);
    auto map1 = block::cyclic_mapping(bm, grid1);
    runtime::SimOptions fo;
    fo.n_ranks = 1;
    runtime::SimResult fres;
    runtime::simulate_factorization(bm, p.tasks, map1, fo, &fres).check();

    std::cout << "\n--- " << name << " (nnz(L+U)=" << p.symbolic.nnz_lu
              << ") ---\n";
    TextTable t({"ranks", "forward (s)", "backward (s)", "messages"});
    for (rank_t ranks : {1, 2, 4, 8, 16, 32, 64}) {
      auto grid = block::ProcessGrid::make(ranks);
      auto map = block::cyclic_mapping(bm, grid);
      std::vector<value_t> x(static_cast<std::size_t>(p.a.n_cols()), 1.0);
      runtime::TrsvOptions to;
      to.n_ranks = ranks;
      to.execute_numerics = false;
      runtime::SimResult fwd, bwd;
      runtime::simulate_trsv(bm, map, true, x, to, &fwd).check();
      runtime::simulate_trsv(bm, map, false, x, to, &bwd).check();
      t.add_row({std::to_string(ranks), TextTable::fmt_sci(fwd.makespan),
                 TextTable::fmt_sci(bwd.makespan),
                 std::to_string(fwd.messages + bwd.messages)});
    }
    t.print(std::cout);
  }
  std::cout << "\nExpected shape: the triangular solve has far less "
               "parallelism than factorisation (critical path of length nb), "
               "so it plateaus at low rank counts.\n";
  return 0;
}
