// Shared plumbing for the experiment harnesses. Every bench binary
// regenerates one table or figure of the paper (see DESIGN.md §4) and prints
// the same rows/series the paper reports.
//
// PANGULU_BENCH_SCALE (env, default 0.5) scales the synthetic stand-in
// matrices; PANGULU_BENCH_MATRICES (comma list) restricts the matrix set.
#pragma once

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "matgen/generators.hpp"
#include "ordering/reorder.hpp"
#include "runtime/sim.hpp"
#include "symbolic/fill.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace pangulu::bench {

inline double bench_scale() {
  if (const char* s = std::getenv("PANGULU_BENCH_SCALE")) {
    double v = std::atof(s);
    if (v > 0) return v;
  }
  return 0.5;
}

inline std::vector<std::string> bench_matrices() {
  if (const char* s = std::getenv("PANGULU_BENCH_MATRICES")) {
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) out.push_back(tok);
    }
    if (!out.empty()) return out;
  }
  return matgen::paper_matrix_names();
}

/// Shortened matrix label like the paper's figures ("apa...", "ASI...").
inline std::string short_name(const std::string& name) {
  return name.size() <= 6 ? name : name.substr(0, 3) + "...";
}

/// Reorder + symbolic + blocking, shared by several harnesses.
struct PreparedMatrix {
  Csc a;
  ordering::ReorderResult reorder;
  symbolic::SymbolicResult symbolic;
  block::BlockMatrix blocks;           // pattern with A's values (pre-numeric)
  std::vector<block::Task> tasks;
  double reorder_seconds = 0;
  double symbolic_seconds = 0;
  double blocking_seconds = 0;
};

inline PreparedMatrix prepare(const std::string& name, double scale,
                              index_t block_size = 0) {
  PreparedMatrix p;
  p.a = matgen::paper_matrix(name, scale);
  Timer t;
  ordering::reorder(p.a, {}, &p.reorder).check();
  p.reorder_seconds = t.seconds();
  t.reset();
  symbolic::symbolic_symmetric(p.reorder.permuted, &p.symbolic).check();
  p.symbolic_seconds = t.seconds();
  t.reset();
  const index_t bs =
      block_size > 0 ? block_size
                     : block::choose_block_size(p.a.n_cols(), p.symbolic.nnz_lu);
  p.blocks = block::BlockMatrix::from_filled(p.symbolic.filled, bs);
  p.tasks = block::enumerate_tasks(p.blocks);
  p.blocking_seconds = t.seconds();
  return p;
}

/// Minimal JSON result writer so bench binaries can emit machine-readable
/// results next to their stdout tables: one flat `meta` object plus an array
/// of flat `rows`. Doubles print with round-trip precision; NaN/Inf (not
/// representable in JSON) become null.
class JsonReporter {
 public:
  void meta(const std::string& key, const std::string& v) {
    meta_.emplace_back(key, quote(v));
  }
  void meta(const std::string& key, double v) {
    meta_.emplace_back(key, number(v));
  }
  void begin_row() { rows_.emplace_back(); }
  void field(const std::string& key, const std::string& v) {
    rows_.back().emplace_back(key, quote(v));
  }
  void field(const std::string& key, double v) {
    rows_.back().emplace_back(key, number(v));
  }

  std::string str() const {
    std::ostringstream os;
    os << "{\n  \"meta\": " << object(meta_, "  ") << ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      os << (i ? ",\n    " : "\n    ") << object(rows_[i], "    ");
    }
    os << (rows_.empty() ? "]" : "\n  ]") << "\n}\n";
    return os.str();
  }

  bool write_file(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << str();
    return static_cast<bool>(out);
  }

 private:
  using Obj = std::vector<std::pair<std::string, std::string>>;

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char ch : s) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            std::ostringstream esc;
            esc << "\\u" << std::hex << std::setw(4) << std::setfill('0')
                << static_cast<int>(static_cast<unsigned char>(ch));
            out += esc.str();
          } else {
            out += ch;
          }
      }
    }
    out += '"';
    return out;
  }

  static std::string number(double v) {
    if (!std::isfinite(v)) return "null";
    std::ostringstream os;
    os << std::setprecision(17) << v;
    return os.str();
  }

  static std::string object(const Obj& o, const std::string& indent) {
    std::string out = "{";
    for (std::size_t i = 0; i < o.size(); ++i) {
      out += (i ? ",\n " : "\n ") + indent + quote(o[i].first) + ": " +
             o[i].second;
    }
    out += o.empty() ? "}" : "\n" + indent + "}";
    return out;
  }

  Obj meta_;
  std::vector<Obj> rows_;
};

/// Timing-only DES run for a given rank count / device / policy / schedule.
inline runtime::SimResult run_sim(const PreparedMatrix& p, rank_t ranks,
                                  const runtime::DeviceModel& device,
                                  runtime::KernelPolicy policy,
                                  runtime::ScheduleMode schedule,
                                  bool balance = true) {
  block::BlockMatrix bm = p.blocks;  // copy: values untouched (no numerics)
  auto grid = block::ProcessGrid::make(ranks);
  block::Mapping map = block::cyclic_mapping(bm, grid);
  if (balance)
    map = block::balanced_mapping(bm, p.tasks, grid, map, nullptr);
  runtime::SimOptions opts;
  opts.device = device;
  opts.n_ranks = ranks;
  opts.policy = policy;
  opts.schedule = schedule;
  opts.execute_numerics = false;
  runtime::SimResult res;
  runtime::simulate_factorization(bm, p.tasks, map, opts, &res).check();
  return res;
}

}  // namespace pangulu::bench
