// Model-checker throughput harness: measures how much of the interleaving
// space the sleep-set partial-order reduction prunes on small protocol grids,
// and what exhaustive exploration costs in wall clock. For each configuration
// the checker runs twice — POR on and POR off — so the reported reduction
// factor is an exact measurement against the naive enumeration, not an
// estimate. Sleep sets prune transitions, never states, so the two runs must
// agree on the reachable state count; the harness exits non-zero if they
// diverge (a soundness bug) or if any configuration fails to complete within
// the state budget (coverage regression).
//
// Doubles as the perf smoke for `ctest -L perf`: the configurations are
// bounded (<= 3x3-block grids, small fault budgets) so the smoke stays well
// inside sanitizer time budgets; PANGULU_MODELCHECK_BUDGET overrides the
// state cap. Emits BENCH_modelcheck.json through the JsonReporter.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/model_check.hpp"
#include "bench_common.hpp"
#include "runtime/elastic.hpp"

using namespace pangulu;

namespace {

struct Model {
  std::string name;
  block::BlockMatrix bm;
  std::vector<block::Task> tasks;
  block::Mapping mapping;
  analysis::ModelOptions opts;
};

Model make_model(const std::string& name, index_t grid, index_t block_size,
                 rank_t ranks) {
  Model m;
  m.name = name;
  const Csc a = matgen::grid2d_laplacian(grid, grid);
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(a, &sym).check();
  m.bm = block::BlockMatrix::from_filled(sym.filled, block_size);
  m.tasks = block::enumerate_tasks(m.bm);
  m.mapping = block::cyclic_mapping(m.bm, block::ProcessGrid::make(ranks));
  return m;
}

analysis::ModelStats run_once(const Model& m, bool por, bool* complete) {
  analysis::ModelOptions opts = m.opts;
  opts.partial_order_reduction = por;
  analysis::ModelCheckResult res;
  const Status st = analysis::model_check(m.bm, m.tasks, m.mapping, opts, &res);
  if (st.code() != StatusCode::kResourceExhausted) st.check();
  if (res.violation) {
    std::cout << "FAIL: " << m.name << " reported a violation on the healthy "
              << "protocol: " << res.cex.detail << "\n";
    std::exit(1);
  }
  *complete = res.complete;
  return res.stats;
}

}  // namespace

int main() {
  std::size_t budget = std::size_t{1} << 21;
  if (const char* b = std::getenv("PANGULU_MODELCHECK_BUDGET")) {
    const long v = std::atol(b);
    if (v > 0) budget = static_cast<std::size_t>(v);
  }

  std::cout << "Protocol model-checker exploration cost, state budget "
            << budget << "\n";

  bench::JsonReporter json;
  json.meta("bench", "modelcheck");
  json.meta("state_budget", static_cast<double>(budget));

  // Configurations span the acceptance envelope: fault-free grids, message
  // faults, the combined fault+elastic case, and crash recovery.
  std::vector<Model> models;
  models.push_back(make_model("2x2-clean", 2, 2, 2));
  models.push_back(make_model("3x3-clean", 3, 3, 2));
  {
    Model m = make_model("3x3-drop+dup", 3, 3, 2);
    m.opts.max_drops = 1;
    m.opts.max_duplicates = 1;
    models.push_back(std::move(m));
  }
  {
    // The acceptance-criteria configuration: a >=3x3-block grid with a
    // message fault budget and one planned elastic drain.
    Model m = make_model("3x3-fault+drain", 3, 3, 2);
    m.opts.max_drops = 1;
    m.opts.max_duplicates = 1;
    runtime::ElasticPlan plan;
    plan.drains.push_back({1, 2});
    m.opts.elastic = runtime::flatten_elastic(plan);
    models.push_back(std::move(m));
  }
  {
    Model m = make_model("3x3-crash", 3, 3, 3);
    m.opts.max_crashes = 1;
    models.push_back(std::move(m));
  }

  TextTable table({"config", "states", "por-trans", "naive-trans", "reduction",
                   "por-ms", "naive-ms"});

  bool ok = true;
  for (Model& m : models) {
    m.opts.max_states = budget;
    bool por_complete = false, naive_complete = false;
    const analysis::ModelStats por = run_once(m, true, &por_complete);
    const analysis::ModelStats naive = run_once(m, false, &naive_complete);

    // Soundness cross-checks: POR must reach every state the naive run
    // reaches, and its free naive-transition counter must match the naive
    // run's measured transition count exactly.
    const bool states_agree = por.states == naive.states;
    const bool estimate_exact = por.naive_transitions == naive.transitions;
    const bool config_ok =
        por_complete && naive_complete && states_agree && estimate_exact;
    ok = ok && config_ok;

    table.add_row({m.name, std::to_string(por.states),
                   std::to_string(por.transitions),
                   std::to_string(naive.transitions),
                   TextTable::fmt(por.reduction_factor(), 2),
                   TextTable::fmt(por.seconds * 1e3, 2),
                   TextTable::fmt(naive.seconds * 1e3, 2)});
    json.begin_row();
    json.field("config", m.name);
    json.field("states", static_cast<double>(por.states));
    json.field("por_transitions", static_cast<double>(por.transitions));
    json.field("naive_transitions", static_cast<double>(naive.transitions));
    json.field("reduction_factor", por.reduction_factor());
    json.field("sleep_pruned", static_cast<double>(por.sleep_pruned));
    json.field("terminal_states", static_cast<double>(por.terminal_states));
    json.field("peak_depth", static_cast<double>(por.peak_depth));
    json.field("por_seconds", por.seconds);
    json.field("naive_seconds", naive.seconds);
    json.field("complete", config_ok ? 1.0 : 0.0);

    if (!por_complete || !naive_complete) {
      std::cout << "FAIL: " << m.name << " exhausted the " << budget
                << "-state budget before completing\n";
    } else if (!states_agree) {
      std::cout << "FAIL: " << m.name << " POR visited " << por.states
                << " states but naive enumeration visited " << naive.states
                << " (sleep sets must preserve the reachable set)\n";
    } else if (!estimate_exact) {
      std::cout << "FAIL: " << m.name << " POR-side naive-transition counter "
                << por.naive_transitions << " != measured naive transitions "
                << naive.transitions << "\n";
    }
  }

  table.print(std::cout);
  std::cout << "\nreduction = naive transitions / POR transitions over the "
               "identical reachable state set.\n";
  if (!json.write_file("BENCH_modelcheck.json"))
    std::cout << "warning: could not write BENCH_modelcheck.json\n";

  if (!ok) {
    std::cout << "FAIL: model-checker exploration guard breached\n";
    return 1;
  }
  std::cout << "OK: every configuration explored exhaustively; POR preserved "
               "the state set in each\n";
  return 0;
}
