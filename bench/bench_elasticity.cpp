// Elastic-runtime cost harness: measures (a) what a planned drain/grow costs
// in virtual time — migration traffic and makespan versus the static grid —
// and (b) that carrying the elastic machinery with a zero-event plan costs
// nothing: the DES schedule must be identical (exact virtual makespan match)
// and the end-to-end wall clock must stay within the no-regression guard.
//
// Doubles as the perf smoke for `ctest -L perf`: the harness exits non-zero
// when a zero-event plan slows factorisation by more than the guard (2% by
// default; PANGULU_ELASTICITY_GUARD overrides) or perturbs the virtual
// schedule at all. Emits BENCH_elasticity.json through the JsonReporter.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "runtime/elastic.hpp"
#include "solver/solver.hpp"

using namespace pangulu;

namespace {

runtime::SimResult run_with_elastic(const bench::PreparedMatrix& p,
                                    rank_t ranks,
                                    const runtime::ElasticPlan& plan) {
  block::BlockMatrix bm = p.blocks;
  auto grid = block::ProcessGrid::make(ranks);
  block::Mapping map = block::cyclic_mapping(bm, grid);
  map = block::balanced_mapping(bm, p.tasks, grid, map, nullptr);
  runtime::SimOptions opts;
  opts.n_ranks = ranks;
  opts.execute_numerics = false;
  opts.elastic = plan;
  runtime::SimResult res;
  runtime::simulate_factorization(bm, p.tasks, map, opts, &res).check();
  return res;
}

double factorize_seconds(const Csc& a, const solver::Options& opts) {
  solver::Solver s;
  Timer t;
  s.factorize(a, opts).check();
  return t.seconds();
}

}  // namespace

int main() {
  const double scale = bench::bench_scale();
  const rank_t ranks = 8;
  const int reps = 7;
  double guard = 0.02;
  if (const char* g = std::getenv("PANGULU_ELASTICITY_GUARD")) {
    const double v = std::atof(g);
    if (v > 0) guard = v;
  }

  std::cout << "Elastic-runtime cost, " << ranks << " virtual ranks, scale="
            << scale << ", zero-event guard=" << guard * 100 << "%\n";

  bench::JsonReporter json;
  json.meta("bench", "elasticity");
  json.meta("scale", scale);
  json.meta("reps", static_cast<double>(reps));
  json.meta("zero_event_guard", guard);

  TextTable table({"matrix", "tasks", "drain1-x", "drain2-x", "grow-x",
                   "blocks/drain", "migr-ms/drain", "zero-event-%"});

  bool guard_ok = true;
  for (const char* name : {"ASIC_680k", "ecology1", "Si87H76"}) {
    bench::PreparedMatrix p = bench::prepare(name, scale);
    const auto nt = static_cast<index_t>(p.tasks.size());

    // Virtual-time scenarios: the DES replays the same canonical numerics,
    // so only makespan, traffic, and the owner map differ from static.
    const runtime::SimResult stat =
        run_with_elastic(p, ranks, runtime::ElasticPlan{});

    runtime::ElasticPlan drain1;
    drain1.drains.push_back({1, nt / 2});
    const runtime::SimResult d1 = run_with_elastic(p, ranks, drain1);

    runtime::ElasticPlan drain2;
    drain2.drains.push_back({1, nt / 3});
    drain2.drains.push_back({2, (2 * nt) / 3});
    const runtime::SimResult d2 = run_with_elastic(p, ranks, drain2);

    runtime::ElasticPlan grow;  // rank 7 provisioned idle, attached at 25%
    grow.adds.push_back({static_cast<rank_t>(ranks - 1), nt / 4});
    const runtime::SimResult gr = run_with_elastic(p, ranks, grow);

    // Migration cost per drained rank, from the two-drain scenario.
    const double drains = static_cast<double>(d2.ranks_drained);
    const double blocks_per_drain =
        drains > 0 ? static_cast<double>(d2.migrated_blocks) / drains : 0;
    const double migr_ms_per_drain =
        drains > 0 ? d2.migration_time * 1e3 / drains : 0;

    // Zero-event no-regression: an armed-but-empty plan must reproduce the
    // static schedule exactly (deterministic DES, so bitwise makespan)...
    runtime::ElasticPlan zero_plan;
    zero_plan.min_ranks = 2;  // non-default knobs, still zero events
    const runtime::SimResult zero_sim = run_with_elastic(p, ranks, zero_plan);
    const bool exact = zero_sim.makespan == stat.makespan &&
                       zero_sim.ranks_drained == 0 &&
                       zero_sim.migrated_blocks == 0;

    // ...and must not cost wall clock end to end. Interleave bare and
    // zero-event reps and keep each one's best; the bare rep spread is the
    // noise floor, so the effective bound is max(guard, spread).
    solver::Options bare;
    bare.n_ranks = 4;
    solver::Options zero = bare;
    zero.elastic_plan.min_ranks = 2;
    double bare_s = 1e300, bare_worst = 0, zero_s = 1e300;
    for (int r = 0; r < reps; ++r) {
      const double b = factorize_seconds(p.a, bare);
      bare_s = std::min(bare_s, b);
      bare_worst = std::max(bare_worst, b);
      zero_s = std::min(zero_s, factorize_seconds(p.a, zero));
    }
    const double overhead = bare_s > 0 ? (zero_s - bare_s) / bare_s : 0.0;
    const double noise = bare_s > 0 ? (bare_worst - bare_s) / bare_s : 0.0;
    const double bound = std::max(guard, noise);
    const bool ok = exact && overhead <= bound;
    guard_ok = guard_ok && ok;

    table.add_row({name, std::to_string(nt),
                   TextTable::fmt(d1.makespan / stat.makespan, 3),
                   TextTable::fmt(d2.makespan / stat.makespan, 3),
                   TextTable::fmt(gr.makespan / stat.makespan, 3),
                   TextTable::fmt(blocks_per_drain, 1),
                   TextTable::fmt(migr_ms_per_drain, 3),
                   TextTable::fmt(overhead * 100.0)});
    json.begin_row();
    json.field("matrix", name);
    json.field("tasks", static_cast<double>(nt));
    json.field("makespan_static", stat.makespan);
    json.field("makespan_drain1", d1.makespan);
    json.field("makespan_drain2", d2.makespan);
    json.field("makespan_grow", gr.makespan);
    json.field("drain1_migrated_blocks", static_cast<double>(d1.migrated_blocks));
    json.field("drain2_migrated_blocks", static_cast<double>(d2.migrated_blocks));
    json.field("migrated_blocks_per_drained_rank", blocks_per_drain);
    json.field("migration_seconds_per_drained_rank", migr_ms_per_drain / 1e3);
    json.field("zero_event_schedule_exact", exact ? 1.0 : 0.0);
    json.field("factor_seconds", bare_s);
    json.field("zero_event_factor_seconds", zero_s);
    json.field("zero_event_overhead_fraction", overhead);
    json.field("noise_fraction", noise);
    json.field("guard_ok", ok ? 1.0 : 0.0);
    if (!exact) {
      std::cout << "GUARD: " << name
                << " zero-event plan perturbed the virtual schedule ("
                << zero_sim.makespan << " vs " << stat.makespan << ")\n";
    } else if (overhead > bound) {
      std::cout << "GUARD: " << name << " zero-event overhead "
                << overhead * 100.0 << "% exceeds " << bound * 100.0
                << "% (guard " << guard * 100.0 << "%, measurement noise "
                << noise * 100.0 << "%)\n";
    } else if (noise > guard) {
      std::cout << "note: " << name << " baseline noise " << noise * 100.0
                << "% exceeds the " << guard * 100.0
                << "% guard; bounding by noise\n";
    }
  }

  table.print(std::cout);
  std::cout << "\ndrainN-x / grow-x are virtual makespans relative to the "
               "static grid; factors are bitwise identical in every run.\n";
  if (!json.write_file("BENCH_elasticity.json"))
    std::cout << "warning: could not write BENCH_elasticity.json\n";

  if (!guard_ok) {
    std::cout << "FAIL: zero-event elasticity guard breached\n";
    return 1;
  }
  std::cout << "OK: zero-event elasticity within the " << guard * 100.0
            << "% guard with an unperturbed schedule\n";
  return 0;
}
