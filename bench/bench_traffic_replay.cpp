// Traffic-replay capacity harness: replays the shipped load traces
// (tools/traffic/scenarios.trace) through the deterministic virtual-time
// admission model (solver/traffic.hpp), calibrated by real measured service
// times per request kind, against two resource shapes — and cross-checks the
// model against the real thing: a threaded mini-storm through a SessionPool
// with per-request deadlines, a solve_deadline round trip, and one
// solve-phase elastic drain proven bitwise identical to the static run.
//
// Doubles as the perf smoke for `ctest -L perf`: exits non-zero when
// deadline-aware shedding stops holding the p95 latency of admitted requests
// within 1.5x (PANGULU_TRAFFIC_P95_GUARD) of the uncontended baseline under
// the 2x-overload solve storm — or when the no-shedding control run stops
// violating that same bound (it exists to document what shedding buys).
// Emits BENCH_traffic_replay.json.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "runtime/trsv_sim.hpp"
#include "solver/session.hpp"
#include "solver/solver.hpp"
#include "solver/traffic.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

using namespace pangulu;

namespace {

double guard_from_env(const char* name, double fallback) {
  if (const char* g = std::getenv(name)) {
    const double v = std::atof(g);
    if (v > 0) return v;
  }
  return fallback;
}

Csc perturbed(const Csc& a, unsigned seed) {
  Csc p = a;
  Rng rng(seed);
  for (value_t& v : p.values_mut())
    v *= static_cast<value_t>(rng.uniform(0.9, 1.1));
  return p;
}

// Self-contained fallback when the shipped trace file is unreadable (e.g. a
// relocated build tree): the four scenarios the guard needs.
const char* kFallbackTrace = R"(
scenario solve_baseline
  kind baseline
  request solve
  requests 96
  overload 0.5
  deadline_mult 3.0
  queue 16
  seed 11
end
scenario solve_storm_2x
  kind solve_storm
  request solve
  requests 96
  overload 2.0
  deadline_mult 0.5
  queue 16
  seed 11
end
scenario solve_storm_2x_noshed
  kind solve_storm
  request solve
  requests 96
  overload 2.0
  deadline_mult 0
  queue 0
  shed off
  seed 11
end
scenario factorize_burst
  kind factorize_burst
  request refactorize
  requests 48
  overload 3.0
  deadline_mult 4.0
  queue 8
  seed 23
end
)";

}  // namespace

int main() {
  const double scale = bench::bench_scale();
  const double p95_guard = guard_from_env("PANGULU_TRAFFIC_P95_GUARD", 1.5);
  bool ok = true;

  bench::JsonReporter json;
  json.meta("bench", "traffic_replay");
  json.meta("scale", scale);
  json.meta("p95_guard", p95_guard);

  // --- Calibration: one real mean service time per request kind, measured
  // on a session over the paper's ecology1 pattern. ckpt_factorize includes
  // the checkpoint-writer overhead (Young/Daly cadence) by construction.
  const Csc a = matgen::paper_matrix("ecology1", scale);
  const index_t n = a.n_cols();
  solver::Options opts;
  opts.n_ranks = 4;
  opts.refine_iters = 0;

  solver::Session session;
  session.setup(a, opts).check();

  std::vector<value_t> b(static_cast<std::size_t>(n), 1.0);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  const int reps = 3;
  std::map<std::string, double> service;
  {
    Timer t;
    for (int r = 0; r < reps; ++r) session.solve(b, x).check();
    service["solve"] = t.seconds() / reps;
    t.reset();
    for (int r = 0; r < reps; ++r)
      session.refactorize(perturbed(a, 40u + static_cast<unsigned>(r))).check();
    service["refactorize"] = t.seconds() / reps;
    t.reset();
    solver::Solver fresh;
    fresh.factorize(a, opts).check();
    service["factorize"] = t.seconds();
    solver::Options copts = opts;
    copts.checkpoint_path = "bench_traffic_ckpt.bin";
    solver::Solver ckpt;
    t.reset();
    ckpt.factorize(a, copts).check();
    service["ckpt_factorize"] = t.seconds();
    std::remove(copts.checkpoint_path.c_str());
  }
  for (const auto& [kind, secs] : service)
    json.meta("service_seconds_" + kind, secs);

  // --- Load the shipped traces (env override for custom capacity studies).
  std::string trace_path;
#ifdef PANGULU_TRAFFIC_TRACE
  trace_path = PANGULU_TRAFFIC_TRACE;
#endif
  if (const char* p = std::getenv("PANGULU_TRAFFIC_TRACE")) trace_path = p;
  std::vector<solver::TrafficScenario> scenarios;
  Status ls = trace_path.empty()
                  ? Status::io_error("no trace path configured")
                  : solver::load_traffic_scenarios(trace_path, &scenarios);
  if (!ls.is_ok()) {
    std::cout << "note: " << ls.message() << "; using built-in traces\n";
    trace_path = "<built-in>";
    solver::parse_traffic_scenarios(kFallbackTrace, &scenarios).check();
  }
  json.meta("trace", trace_path);
  json.meta("scenarios", static_cast<double>(scenarios.size()));

  // --- Replay every scenario against every shape. The replay is a pure
  // function of (trace, shape, mean service), so these rows are byte-stable
  // across machines up to the calibrated time unit.
  const std::vector<solver::TrafficShape> shapes = {{"small", 2}, {"large", 8}};
  TextTable table({"scenario", "shape", "offered", "admitted", "shed_rate",
                   "p50_ms", "p95_ms", "p99_ms", "throughput_rps"});
  // p95 per (shape, scenario) for the guard checks below.
  std::map<std::string, std::map<std::string, double>> p95;
  for (const auto& sc : scenarios) {
    for (const auto& shape : shapes) {
      const auto it = service.find(sc.request);
      const double mean_s =
          it != service.end() ? it->second : service["solve"];
      solver::TrafficReport r;
      solver::replay_traffic(sc, shape, mean_s, &r).check();
      p95[shape.name][sc.name] = r.p95_latency;
      table.add_row({sc.name, shape.name, std::to_string(r.offered),
                     std::to_string(r.admitted), TextTable::fmt(r.shed_rate),
                     TextTable::fmt(r.p50_latency * 1e3),
                     TextTable::fmt(r.p95_latency * 1e3),
                     TextTable::fmt(r.p99_latency * 1e3),
                     TextTable::fmt(r.throughput_rps)});
      json.begin_row();
      json.field("scenario", sc.name);
      json.field("kind", sc.kind);
      json.field("request", sc.request);
      json.field("shape", shape.name);
      json.field("servers", static_cast<double>(shape.servers));
      json.field("mean_service_seconds", mean_s);
      json.field("offered", static_cast<double>(r.offered));
      json.field("admitted", static_cast<double>(r.admitted));
      json.field("shed", static_cast<double>(r.shed));
      json.field("rejected", static_cast<double>(r.rejected));
      json.field("shed_rate", r.shed_rate);
      json.field("makespan_seconds", r.makespan_seconds);
      json.field("throughput_rps", r.throughput_rps);
      json.field("p50_latency_seconds", r.p50_latency);
      json.field("p95_latency_seconds", r.p95_latency);
      json.field("p99_latency_seconds", r.p99_latency);
      json.field("mean_wait_seconds", r.mean_wait);
      json.field("peak_queue_depth", static_cast<double>(r.peak_queue_depth));
    }
  }
  std::cout << "Traffic replay (" << trace_path << "), service unit "
            << service["solve"] * 1e3 << "ms/solve:\n";
  table.print(std::cout);

  // --- Guard: under the 2x solve storm, deadline-aware shedding keeps the
  // p95 of admitted requests within `p95_guard` x the uncontended baseline;
  // the no-shedding control violates that bound on every shape (that
  // contrast is the point of the scenario — see tools/traffic).
  for (const auto& shape : shapes) {
    const auto& byname = p95[shape.name];
    if (!byname.count("solve_baseline") || !byname.count("solve_storm_2x")) {
      std::cout << "note: custom trace lacks solve_baseline/solve_storm_2x; "
                   "p95 guard skipped for shape "
                << shape.name << "\n";
      continue;
    }
    const double base = byname.at("solve_baseline");
    const double storm = byname.at("solve_storm_2x");
    const double ratio = base > 0 ? storm / base : 0;
    json.meta("p95_ratio_shed_" + shape.name, ratio);
    std::cout << "shape " << shape.name << ": storm p95 = " << ratio
              << "x baseline (guard " << p95_guard << "x)\n";
    if (ratio > p95_guard) {
      std::cout << "FAIL: shedding did not hold the storm p95 within "
                << p95_guard << "x of baseline on shape " << shape.name
                << "\n";
      ok = false;
    }
    if (byname.count("solve_storm_2x_noshed")) {
      const double noshed = byname.at("solve_storm_2x_noshed");
      const double nratio = base > 0 ? noshed / base : 0;
      json.meta("p95_ratio_noshed_" + shape.name, nratio);
      std::cout << "shape " << shape.name << ": no-shed storm p95 = " << nratio
                << "x baseline (documented violation)\n";
      if (nratio <= p95_guard) {
        std::cout << "FAIL: the no-shedding control no longer violates the "
                  << p95_guard << "x bound on shape " << shape.name
                << " — the storm stopped stressing the queue\n";
        ok = false;
      }
    }
  }

  // --- Cross-check the model against the real SessionPool: a threaded
  // mini-storm of deadline-carrying solves through admission control, with
  // jittered-backoff retries for shed requests. Also exercises the two
  // typed failure paths the model assumes: a starved pool timing out
  // (kDeadlineExceeded, not a hang) and a solve_deadline miss leaving the
  // session ready.
  {
    solver::SessionPoolOptions starved;
    starved.max_concurrent = 1;
    starved.default_admit_timeout_seconds = 0.05;
    solver::SessionPool spool(starved);
    solver::SessionPool::Ticket holder, blocked;
    spool.admit(1, &holder).check();
    const Status st = spool.admit(1, &blocked);
    if (st.code() != StatusCode::kDeadlineExceeded) {
      std::cout << "FAIL: starved pool admit returned "
                << to_string(st.code()) << ", want kDeadlineExceeded\n";
      ok = false;
    }

    const Status miss = session.solve_deadline(b, x, 1e-9);
    bool usable = false;
    if (miss.code() == StatusCode::kDeadlineExceeded)
      usable = session.solve(b, x).is_ok();
    if (!usable) {
      std::cout << "FAIL: solve_deadline miss ("
                << to_string(miss.code())
                << ") did not leave the session usable\n";
      ok = false;
    }
    json.meta("solve_deadline_roundtrip", usable ? 1.0 : 0.0);

    solver::SessionPoolOptions popts;
    popts.max_concurrent = 2;
    popts.max_queue_depth = 8;
    popts.default_admit_timeout_seconds = 5.0;
    solver::SessionPool pool(popts);
    const int n_threads = 4, ops = 8;
    std::atomic<int> solved{0}, shed{0}, retried_ok{0}, hard_fail{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < n_threads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(700u + static_cast<unsigned>(t));
        std::vector<value_t> tb(static_cast<std::size_t>(n), 1.0);
        std::vector<value_t> tx(static_cast<std::size_t>(n));
        for (int i = 0; i < ops; ++i) {
          // Alternate tight and loose admission deadlines, like the
          // deadline_mix trace; tight ones shed under contention.
          const bool tight = (i % 2) == 1;
          for (int attempt = 0; attempt < 3; ++attempt) {
            CancelToken tok;
            tok.set_wall_deadline_after(tight ? 1e-4 : 5.0);
            solver::SessionPool::Ticket ticket;
            const Status as = pool.admit(1, &ticket, &tok);
            if (as.is_ok()) {
              if (session.solve(tb, tx).is_ok()) {
                solved.fetch_add(1);
                if (attempt > 0) retried_ok.fetch_add(1);
              } else {
                hard_fail.fetch_add(1);
              }
              break;
            }
            if (as.code() != StatusCode::kDeadlineExceeded &&
                as.code() != StatusCode::kResourceExhausted) {
              hard_fail.fetch_add(1);
              break;
            }
            shed.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::duration<double>(
                solver::jittered_backoff_seconds(attempt, 1e-4, 1e-2, rng)));
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    const solver::SessionPoolStats ps = pool.stats();
    std::cout << "pool storm: " << solved.load() << " solved, " << shed.load()
              << " shed (" << retried_ok.load()
              << " recovered by backoff retry), pool counters: admitted "
              << ps.admitted << " shed " << ps.shed << " rejected "
              << ps.rejected_queue_full << ", wait mean "
              << ps.mean_wait_seconds * 1e3 << "ms p95 "
              << ps.p95_wait_seconds * 1e3 << "ms, peak queue "
              << ps.peak_queue_depth << "\n";
    json.meta("pool_solved", static_cast<double>(solved.load()));
    json.meta("pool_shed_observed", static_cast<double>(shed.load()));
    json.meta("pool_retried_ok", static_cast<double>(retried_ok.load()));
    json.meta("pool_admitted", static_cast<double>(ps.admitted));
    json.meta("pool_shed", static_cast<double>(ps.shed));
    json.meta("pool_rejected_queue_full",
              static_cast<double>(ps.rejected_queue_full));
    json.meta("pool_mean_wait_seconds", ps.mean_wait_seconds);
    json.meta("pool_p95_wait_seconds", ps.p95_wait_seconds);
    json.meta("pool_peak_queue_depth", static_cast<double>(ps.peak_queue_depth));
    if (hard_fail.load() != 0) {
      std::cout << "FAIL: " << hard_fail.load()
                << " pool-storm operations failed outside the shed paths\n";
      ok = false;
    }
    if (solved.load() == 0) {
      std::cout << "FAIL: pool storm admitted nothing\n";
      ok = false;
    }
  }

  // --- Solve-phase elasticity: one L-sweep with two planned rank drains at
  // level boundaries must produce bitwise the same vector as the static run
  // (drain quiesce -> Mapping::rebalance -> I6 re-proof -> continue).
  {
    Csc ga = matgen::grid2d_laplacian(40, 40);
    symbolic::SymbolicResult sym;
    symbolic::symbolic_symmetric(ga, &sym).check();
    block::BlockMatrix bm = block::BlockMatrix::from_filled(sym.filled, 20);
    auto tasks = block::enumerate_tasks(bm);
    block::Mapping map = block::cyclic_mapping(bm, block::ProcessGrid::make(4));
    runtime::SimOptions fo;
    fo.n_ranks = 4;
    runtime::SimResult fres;
    runtime::simulate_factorization(bm, tasks, map, fo, &fres).check();

    std::vector<value_t> xs(static_cast<std::size_t>(ga.n_cols()), 1.0);
    std::vector<value_t> xe = xs;
    runtime::TrsvOptions to;
    to.n_ranks = 4;
    runtime::SimResult rs, re;
    runtime::simulate_trsv(bm, map, /*lower=*/true, xs, to, &rs).check();
    runtime::TrsvOptions te = to;
    te.elastic.drains.push_back({1, 20});
    te.elastic.drains.push_back({2, 40});
    te.mapping = &map;
    runtime::simulate_trsv(bm, map, /*lower=*/true, xe, te, &re).check();

    const bool bitwise =
        std::memcmp(xs.data(), xe.data(), xs.size() * sizeof(value_t)) == 0;
    std::cout << "solve-phase drain: " << re.ranks_drained
              << " ranks drained, " << static_cast<long long>(re.migrated_blocks)
              << " blocks migrated, solution "
              << (bitwise ? "bitwise identical" : "DIVERGED") << "\n";
    json.meta("drain_bitwise_identical", bitwise ? 1.0 : 0.0);
    json.meta("drain_ranks_drained", static_cast<double>(re.ranks_drained));
    json.meta("drain_migrated_blocks", static_cast<double>(re.migrated_blocks));
    if (!bitwise || re.ranks_drained != 2 || re.migrated_blocks <= 0) {
      std::cout << "FAIL: solve-phase drain did not reproduce the static "
                   "solution with 2 drains and nonzero migration\n";
      ok = false;
    }
  }

  if (!json.write_file("BENCH_traffic_replay.json"))
    std::cout << "warning: could not write BENCH_traffic_replay.json\n";

  if (!ok) return 1;
  std::cout << "OK: deadline-aware shedding holds the storm p95 within "
            << p95_guard << "x of baseline; no-shed control violates it; "
               "pool and solve-phase drain cross-checks pass\n";
  return 0;
}
