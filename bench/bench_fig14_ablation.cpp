// Figure 14: ablation of the two optimisations on 128 GPUs —
//   Baseline           : fixed GPU kernels + level-set scheduling
//   Kernel selection   : Figure 8 decision trees + level-set scheduling
//   Selection+SyncFree : decision trees + synchronisation-free scheduling
// Paper: selection alone gives 1.0-2.2x (1.7x avg); both together give
// 2.3x-5.4x (3.8x avg).
#include <iostream>

#include "bench_common.hpp"

using namespace pangulu;

int main() {
  const double scale = bench::bench_scale();
  const rank_t ranks = 128;
  std::cout << "Reproducing Figure 14 (optimisation ablation @128 GPUs), "
               "scale=" << scale << '\n';
  TextTable t({"matrix", "baseline", "kernel selection",
               "selection + sync-free"});
  std::vector<double> sel_speedup, both_speedup;

  const auto device = runtime::DeviceModel::a100_like();
  for (const auto& name : bench::bench_matrices()) {
    bench::PreparedMatrix p = bench::prepare(name, scale);
    auto base = bench::run_sim(p, ranks, device,
                               runtime::KernelPolicy::kFixedGpu,
                               runtime::ScheduleMode::kLevelSet);
    auto sel = bench::run_sim(p, ranks, device,
                              runtime::KernelPolicy::kAdaptive,
                              runtime::ScheduleMode::kLevelSet);
    auto both = bench::run_sim(p, ranks, device,
                               runtime::KernelPolicy::kAdaptive,
                               runtime::ScheduleMode::kSyncFree);
    const double s1 = base.makespan / sel.makespan;
    const double s2 = base.makespan / both.makespan;
    sel_speedup.push_back(s1);
    both_speedup.push_back(s2);
    t.add_row({name, "1.00x", TextTable::fmt_speedup(s1),
               TextTable::fmt_speedup(s2)});
  }
  t.print(std::cout);
  std::cout << "averages: selection " << TextTable::fmt_speedup(geomean(sel_speedup))
            << " (paper avg 1.7x), selection+sync-free "
            << TextTable::fmt_speedup(geomean(both_speedup))
            << " (paper avg 3.8x)\n";
  return 0;
}
