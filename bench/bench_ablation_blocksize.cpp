// Ablation: block size. §4.1 of the paper computes the block size "from the
// matrix order and the density of the matrix after symbolic factorisation to
// balance the computation and communication" — this harness sweeps explicit
// block sizes around the heuristic's pick and reports modeled numeric time,
// messages and bytes on 16 simulated GPUs, showing the trade-off the
// heuristic navigates.
#include <iostream>

#include "bench_common.hpp"

using namespace pangulu;

int main() {
  const double scale = bench::bench_scale();
  const rank_t ranks = 16;
  std::cout << "Block-size ablation (16 simulated GPUs), scale=" << scale
            << '\n';

  for (const char* name : {"ASIC_680k", "audikw_1", "ecology1", "Si87H76"}) {
    Csc a = matgen::paper_matrix(name, scale);
    ordering::ReorderResult reorder;
    ordering::reorder(a, {}, &reorder).check();
    symbolic::SymbolicResult sym;
    symbolic::symbolic_symmetric(reorder.permuted, &sym).check();
    const index_t heuristic =
        block::choose_block_size(a.n_cols(), sym.nnz_lu);
    const double flops = symbolic::factorization_flops(sym.filled);

    std::cout << "\n--- " << name << " (n=" << a.n_cols()
              << ", heuristic block size " << heuristic << ") ---\n";
    TextTable t({"block", "nb", "tasks", "time (s)", "GFLOPS", "messages",
                 "MiB"});
    for (index_t bs : std::vector<index_t>{heuristic / 4, heuristic / 2,
                                           heuristic, heuristic * 2,
                                           heuristic * 4}) {
      if (bs < 4) continue;
      block::BlockMatrix bm = block::BlockMatrix::from_filled(sym.filled, bs);
      auto tasks = block::enumerate_tasks(bm);
      auto grid = block::ProcessGrid::make(ranks);
      auto map = block::balanced_mapping(bm, tasks, grid,
                                         block::cyclic_mapping(bm, grid),
                                         nullptr);
      runtime::SimOptions so;
      so.n_ranks = ranks;
      so.execute_numerics = false;
      runtime::SimResult res;
      runtime::simulate_factorization(bm, tasks, map, so, &res).check();
      t.add_row({std::to_string(bs) + (bs == heuristic ? "*" : ""),
                 std::to_string(bm.nb()), std::to_string(tasks.size()),
                 TextTable::fmt(res.makespan, 5),
                 TextTable::fmt(flops / res.makespan / 1e9, 2),
                 std::to_string(res.messages),
                 TextTable::fmt(res.bytes / 1048576.0, 1)});
    }
    t.print(std::cout);
  }
  std::cout << "\n(*) heuristic choice. Expected: small blocks explode the "
               "message count, large blocks starve the 2D grid of "
               "parallelism; the heuristic sits near the sweet spot.\n";
  return 0;
}
