// Mixed-precision regression harness (DESIGN.md §14): times the numeric
// phase at FP32 against FP64 on the bandwidth-bound matgen families (the
// stamped accumulators stream value arrays, so halving the word size should
// buy real wall-clock), reports the modeled communication bytes at both
// widths, and compares a mixed-IR end-to-end solve (FP32 factors + FP64
// refinement) against the pure-FP64 pipeline with its IR iteration counts.
// Prints a table, writes BENCH_mixed_precision.json, and exits non-zero
// when the geomean FP32/FP64 numeric-phase speedup falls below the guard
// (PANGULU_PERF_GUARD, default 1.3 — the PR's acceptance target; override
// downwards on noisy shared machines).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "kernels/precision.hpp"
#include "matgen/generators.hpp"
#include "runtime/sim.hpp"
#include "solver/solver.hpp"
#include "symbolic/fill.hpp"

using namespace pangulu;

namespace {

double guard_value() {
  if (const char* s = std::getenv("PANGULU_PERF_GUARD")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.3;
}

struct Prepared {
  block::BlockMatrix bm;
  std::vector<block::Task> tasks;
  block::Mapping mapping;
};

Prepared prepare(const Csc& a, index_t block_size, rank_t ranks) {
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(a, &sym).check();
  Prepared p;
  if (block_size == 0)
    block_size = block::choose_block_size(a.n_cols(), sym.filled.nnz());
  p.bm = block::BlockMatrix::from_filled(sym.filled, block_size);
  p.tasks = block::enumerate_tasks(p.bm);
  p.mapping = block::cyclic_mapping(p.bm, block::ProcessGrid::make(ranks));
  return p;
}

/// Wall-clock the numeric phase at value type V: min-of-repeats over fresh
/// precision-converted copies of the blocked pattern (the factorisation
/// mutates its input). Returns the modeled message bytes alongside.
template <class V>
std::pair<double, std::size_t> time_numeric(const Prepared& p, rank_t ranks,
                                            int repeats) {
  double best = std::numeric_limits<double>::infinity();
  std::size_t bytes = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    auto bm = block::BlockMatrixT<V>::converted_from(p.bm);
    runtime::SimOptions opts;
    opts.n_ranks = ranks;
    // Serial CPU kernels isolate the arithmetic/bandwidth cost the precision
    // switch targets: the parallel variants spin-wait on the strictly
    // sequential column chains of these dense-ish factors, an overhead that
    // is identical at both widths and only dilutes the measured ratio.
    opts.policy = runtime::KernelPolicy::kFixedCpu;
    runtime::SimResult res;
    Timer t;
    runtime::simulate_factorization(bm, p.tasks, p.mapping, opts, &res)
        .check();
    best = std::min(best, t.seconds());
    bytes = res.bytes;
  }
  return {best, bytes};
}

/// End-to-end factorize + solve at the given precision; returns
/// (factor seconds, solve seconds, IR iterations of the solve).
struct EndToEnd {
  double factor_s = 0;
  double solve_s = 0;
  int ir_iters = 0;
};

EndToEnd end_to_end(const Csc& a, kernels::Precision prec, rank_t ranks) {
  solver::Solver s;
  solver::Options opts;
  opts.n_ranks = ranks;
  opts.precision = prec;
  EndToEnd r;
  Timer tf;
  s.factorize(a, opts).check();
  r.factor_s = tf.seconds();

  std::vector<value_t> ones(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  a.spmv(ones, b);
  std::vector<value_t> x(b.size());
  solver::SolveStats stats;
  Timer ts;
  s.solve(b, x, &stats).check();
  r.solve_s = ts.seconds();
  r.ir_iters = stats.refine_iterations;
  return r;
}

}  // namespace

int main() {
  const double scale = pangulu::bench::bench_scale();
  const rank_t ranks = 4;
  const int repeats = 3;
  const double guard = guard_value();

  // The bandwidth-bound families: sizes are chosen so the FP64 factor
  // (~30-50 MB of values) spills the last-level cache and the numeric phase
  // streams from DRAM — the regime the precision switch targets. Smaller,
  // cache-resident instances measure arithmetic latency instead and show
  // FP32 speedups near 1x regardless of kernel quality, so a scaled-down
  // run (PANGULU_BENCH_SCALE < 1) should pair with a lower
  // PANGULU_PERF_GUARD.
  struct Family {
    std::string name;
    Csc a;
  };
  std::vector<Family> families;
  families.push_back(
      {"banded", matgen::banded_random(
                     static_cast<index_t>(std::max(1000.0, 10000.0 * scale)),
                     static_cast<index_t>(std::max(96.0, 800.0 * scale)), 1.0,
                     0, 42)});
  const auto fem_n = static_cast<index_t>(std::max(6.0, 24.0 * scale));
  families.push_back({"fem3d", matgen::fem3d(fem_n, fem_n, fem_n, 3, 7)});
  const auto grid_n = static_cast<index_t>(std::max(10.0, 40.0 * scale));
  families.push_back(
      {"grid3d", matgen::grid3d_laplacian(grid_n, grid_n, grid_n)});

  pangulu::bench::JsonReporter json;
  json.meta("bench", "mixed_precision");
  json.meta("ranks", static_cast<double>(ranks));
  json.meta("repeats", static_cast<double>(repeats));
  json.meta("guard", guard);

  std::cout << "mixed-precision numeric phase, FP32 vs FP64 (" << ranks
            << " ranks, min of " << repeats << " repeats)\n";

  double log_speedup_sum = 0;
  for (const Family& f : families) {
    // Block size 96: large enough that the dense-column fast paths engage on
    // the filled factors of every family above, small enough that per-block
    // scheduling stays negligible.
    Prepared p = prepare(f.a, 96, ranks);
    const auto [fp64_s, fp64_bytes] = time_numeric<double>(p, ranks, repeats);
    const auto [fp32_s, fp32_bytes] = time_numeric<float>(p, ranks, repeats);
    const double speedup = fp64_s / fp32_s;
    log_speedup_sum += std::log(speedup);

    const EndToEnd e64 = end_to_end(f.a, kernels::Precision::kDouble, ranks);
    const EndToEnd eir = end_to_end(f.a, kernels::Precision::kMixedIR, ranks);

    std::cout << "  " << f.name << ": fp64 " << fp64_s * 1e3 << " ms, fp32 "
              << fp32_s * 1e3 << " ms (" << speedup << "x), modeled bytes "
              << fp64_bytes << " -> " << fp32_bytes << "\n";
    std::cout << "    end-to-end solve: fp64 " << e64.solve_s * 1e3
              << " ms, mixed-IR " << eir.solve_s * 1e3 << " ms ("
              << eir.ir_iters << " IR iters)\n";

    json.begin_row();
    json.field("family", f.name);
    json.field("n", static_cast<double>(f.a.n_cols()));
    json.field("nnz", static_cast<double>(f.a.nnz()));
    json.field("fp64_numeric_seconds", fp64_s);
    json.field("fp32_numeric_seconds", fp32_s);
    json.field("fp32_speedup", speedup);
    json.field("fp64_modeled_bytes", static_cast<double>(fp64_bytes));
    json.field("fp32_modeled_bytes", static_cast<double>(fp32_bytes));
    json.field("fp64_factor_seconds", e64.factor_s);
    json.field("mixed_ir_factor_seconds", eir.factor_s);
    json.field("fp64_solve_seconds", e64.solve_s);
    json.field("mixed_ir_solve_seconds", eir.solve_s);
    json.field("mixed_ir_iterations", static_cast<double>(eir.ir_iters));

    // The modeled traffic halves exactly with the word size; a drift here
    // means the plans stopped baking sizeof(V) into message sizes.
    if (fp32_bytes >= fp64_bytes) {
      std::cerr << "FAIL: FP32 modeled bytes (" << fp32_bytes
                << ") not below FP64 (" << fp64_bytes << ") on " << f.name
                << "\n";
      return 2;
    }
  }

  const double geomean =
      std::exp(log_speedup_sum / static_cast<double>(families.size()));
  json.meta("geomean_fp32_speedup", geomean);
  std::cout << "  geomean FP32 numeric-phase speedup: " << geomean
            << "x (guard " << guard << "x)\n";

  if (!json.write_file("BENCH_mixed_precision.json")) {
    std::cerr << "FAIL: could not write BENCH_mixed_precision.json\n";
    return 2;
  }

  if (geomean < guard) {
    std::cerr << "FAIL: FP32 numeric-phase speedup " << geomean
              << "x below guard " << guard << "x\n";
    return 1;
  }
  return 0;
}
